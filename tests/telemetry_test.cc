#include <set>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "telemetry/collector.h"
#include "telemetry/metrics.h"
#include "telemetry/runner.h"
#include "telemetry/trace.h"

namespace invarnetx::telemetry {
namespace {

// ---------------------------------------------------------------- metrics --

TEST(MetricsTest, CatalogSizeAndNames) {
  std::set<std::string> names;
  for (int i = 0; i < kNumMetrics; ++i) {
    const std::string name = MetricName(i);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "invalid_metric");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumMetrics));  // all distinct
  EXPECT_EQ(MetricName(-1), "invalid_metric");
  EXPECT_EQ(MetricName(kNumMetrics), "invalid_metric");
}

TEST(MetricsTest, NameRoundTrip) {
  for (int i = 0; i < kNumMetrics; ++i) {
    Result<int> parsed = MetricFromName(MetricName(i));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), i);
  }
  EXPECT_FALSE(MetricFromName("no_such_metric").ok());
}

TEST(MetricsTest, PairIndexBijection) {
  int index = 0;
  for (int a = 0; a < kNumMetrics; ++a) {
    for (int b = a + 1; b < kNumMetrics; ++b) {
      EXPECT_EQ(PairIndex(a, b), index);
      int ra = 0, rb = 0;
      PairFromIndex(index, &ra, &rb);
      EXPECT_EQ(ra, a);
      EXPECT_EQ(rb, b);
      ++index;
    }
  }
  EXPECT_EQ(index, kNumMetricPairs);
}

// -------------------------------------------------------------- collector --

cluster::SimNode BusyNode() {
  cluster::SimNode node;
  node.drivers.cpu_task = 0.6;
  node.drivers.io_read = 0.4;
  node.drivers.io_write = 0.2;
  node.drivers.net_in = 0.3;
  node.drivers.net_out = 0.3;
  node.drivers.mem_task_mb = 3000.0;
  node.drivers.task_churn = 0.5;
  node.drivers.rpc_rate = 0.4;
  node.drivers.cpi_base = 1.0;
  return node;
}

TEST(CollectorTest, MetricsAreNonNegative) {
  Rng rng(1);
  const auto metrics = ObserveMetrics(BusyNode(), &rng);
  for (int i = 0; i < kNumMetrics; ++i) {
    EXPECT_GE(metrics[static_cast<size_t>(i)], 0.0) << MetricName(i);
  }
}

TEST(CollectorTest, CpuAccountsRoughlySumTo100) {
  Rng rng(2);
  const auto metrics = ObserveMetrics(BusyNode(), &rng);
  const double total = metrics[kCpuUserPct] + metrics[kCpuSysPct] +
                       metrics[kCpuIdlePct] + metrics[kCpuIowaitPct];
  EXPECT_NEAR(total, 100.0, 12.0);  // observation noise applies per metric
}

TEST(CollectorTest, MemoryAccountsRoughlySumToTotal) {
  Rng rng(3);
  cluster::SimNode node = BusyNode();
  const auto metrics = ObserveMetrics(node, &rng);
  const double total =
      metrics[kMemUsedMb] + metrics[kMemFreeMb] + metrics[kMemCachedMb];
  EXPECT_NEAR(total, node.spec.mem_total_mb, node.spec.mem_total_mb * 0.15);
}

TEST(CollectorTest, DemandMovesUtilizationMetrics) {
  Rng rng(4);
  cluster::SimNode idle;
  idle.drivers.cpi_base = 1.0;
  cluster::SimNode busy = BusyNode();
  const auto m_idle = ObserveMetrics(idle, &rng);
  const auto m_busy = ObserveMetrics(busy, &rng);
  EXPECT_GT(m_busy[kCpuUserPct], m_idle[kCpuUserPct] + 20.0);
  EXPECT_GT(m_busy[kDiskReadKbps], m_idle[kDiskReadKbps] + 5000.0);
  EXPECT_GT(m_busy[kNetRxKbps], m_idle[kNetRxKbps] + 5000.0);
  EXPECT_GT(m_busy[kCtxSwitchesPerSec], m_idle[kCtxSwitchesPerSec]);
}

TEST(CollectorTest, SuspensionCollapsesActivityButKeepsMemory) {
  Rng rng(5);
  cluster::SimNode busy = BusyNode();
  cluster::SimNode suspended = BusyNode();
  suspended.drivers.suspended = true;
  const auto m_busy = ObserveMetrics(busy, &rng);
  const auto m_susp = ObserveMetrics(suspended, &rng);
  EXPECT_LT(m_susp[kCpuUserPct], m_busy[kCpuUserPct] * 0.3);
  EXPECT_LT(m_susp[kDiskReadKbps], m_busy[kDiskReadKbps] * 0.3);
  // Resident memory survives a SIGSTOP.
  EXPECT_NEAR(m_susp[kMemUsedMb], m_busy[kMemUsedMb],
              m_busy[kMemUsedMb] * 0.2);
}

TEST(CollectorTest, PacketLossInflatesRetransmissions) {
  Rng rng(6);
  cluster::SimNode clean = BusyNode();
  cluster::SimNode lossy = BusyNode();
  lossy.drivers.pkt_loss = 0.06;
  const auto m_clean = ObserveMetrics(clean, &rng);
  const auto m_lossy = ObserveMetrics(lossy, &rng);
  EXPECT_GT(m_lossy[kTcpRetransPerSec], m_clean[kTcpRetransPerSec] + 20.0);
  EXPECT_LT(m_lossy[kNetRxKbps], m_clean[kNetRxKbps]);
}

TEST(CollectorTest, DelayShrinksThroughputWithoutRetransStorm) {
  Rng rng(7);
  cluster::SimNode delayed = BusyNode();
  delayed.drivers.net_delay_ms = 800.0;
  cluster::SimNode lossy = BusyNode();
  lossy.drivers.pkt_loss = 0.06;
  const auto m_delay = ObserveMetrics(delayed, &rng);
  const auto m_lossy = ObserveMetrics(lossy, &rng);
  // Delay crushes throughput harder than ~6% loss...
  EXPECT_LT(m_delay[kNetRxKbps], m_lossy[kNetRxKbps]);
  // ...but produces far fewer retransmissions.
  EXPECT_LT(m_delay[kTcpRetransPerSec], m_lossy[kTcpRetransPerSec] * 0.5);
}

TEST(CollectorTest, SwapStaysZeroUntilPressure) {
  Rng rng(8);
  cluster::SimNode node = BusyNode();
  const auto normal = ObserveMetrics(node, &rng);
  EXPECT_LT(normal[kSwapUsedMb], 16.0);
  node.drivers.mem_extra_mb = 12000.0;
  const auto pressured = ObserveMetrics(node, &rng);
  EXPECT_GT(pressured[kSwapUsedMb], 200.0);
  EXPECT_GT(pressured[kPageFaultsPerSec], normal[kPageFaultsPerSec] * 2.0);
}

TEST(CollectorTest, CounterMetricsAreIntegers) {
  Rng rng(9);
  const auto metrics = ObserveMetrics(BusyNode(), &rng);
  EXPECT_DOUBLE_EQ(metrics[kTcpRetransPerSec],
                   std::floor(metrics[kTcpRetransPerSec]));
  EXPECT_DOUBLE_EQ(metrics[kProcsRunning],
                   std::floor(metrics[kProcsRunning]));
  EXPECT_DOUBLE_EQ(metrics[kSwapUsedMb], std::floor(metrics[kSwapUsedMb]));
}

TEST(CollectorTest, MetricNoiseSlotInjectsJitter) {
  // Variance of a metric must grow when its fault-noise slot is set.
  auto spread = [](double slot_noise) {
    Rng rng(10);
    cluster::SimNode node = BusyNode();
    node.drivers.metric_noise[kCpuUserPct] = slot_noise;
    std::vector<double> samples;
    for (int i = 0; i < 200; ++i) {
      samples.push_back(ObserveMetrics(node, &rng)[kCpuUserPct]);
    }
    return SampleStdDev(samples);
  };
  EXPECT_GT(spread(0.4), spread(0.0) * 3.0);
}

// ------------------------------------------------------------------ trace --

TEST(TraceTest, SeriesBoundsChecked) {
  RunTrace trace;
  trace.nodes.resize(2);
  EXPECT_FALSE(trace.Series(5, 0).ok());
  EXPECT_FALSE(trace.Series(0, -1).ok());
  EXPECT_FALSE(trace.Series(0, kNumMetrics).ok());
  EXPECT_TRUE(trace.Series(1, 0).ok());
}

TEST(TraceTest, MeanSlaveCpiAveragesSlavesOnly) {
  RunTrace trace;
  trace.ticks = 2;
  trace.nodes.resize(3);
  trace.nodes[0].cpi = {9.0, 9.0};  // master: excluded
  trace.nodes[1].cpi = {1.0, 2.0};
  trace.nodes[2].cpi = {3.0, 4.0};
  const std::vector<double> mean = trace.MeanSlaveCpi();
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 3.0);
}

// ----------------------------------------------------------------- runner --

TEST(RunnerTest, BatchRunCompletes) {
  RunConfig config;
  config.workload = workload::WorkloadType::kWordCount;
  config.seed = 42;
  Result<RunTrace> trace = SimulateRun(config);
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace.value().finished);
  EXPECT_GT(trace.value().ticks, 20);
  EXPECT_LT(trace.value().ticks, 120);
  EXPECT_EQ(trace.value().nodes.size(), 5u);
  for (const NodeTrace& node : trace.value().nodes) {
    EXPECT_EQ(node.cpi.size(), static_cast<size_t>(trace.value().ticks));
    for (int m = 0; m < kNumMetrics; ++m) {
      EXPECT_EQ(node.metrics[static_cast<size_t>(m)].size(),
                static_cast<size_t>(trace.value().ticks));
    }
  }
  EXPECT_FALSE(trace.value().fault.has_value());
}

TEST(RunnerTest, InteractiveRunsExactlyObservationWindow) {
  RunConfig config;
  config.workload = workload::WorkloadType::kTpcDs;
  config.seed = 42;
  config.interactive_ticks = 33;
  Result<RunTrace> trace = SimulateRun(config);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace.value().ticks, 33);
  EXPECT_FALSE(trace.value().finished);
}

TEST(RunnerTest, DeterministicGivenSeed) {
  RunConfig config;
  config.workload = workload::WorkloadType::kGrep;
  config.seed = 7;
  const RunTrace a = SimulateRun(config).value();
  const RunTrace b = SimulateRun(config).value();
  ASSERT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.nodes[1].cpi, b.nodes[1].cpi);
  EXPECT_EQ(a.nodes[2].metrics[kCtxSwitchesPerSec],
            b.nodes[2].metrics[kCtxSwitchesPerSec]);
}

TEST(RunnerTest, FaultRecordedAsGroundTruth) {
  RunConfig config;
  config.workload = workload::WorkloadType::kWordCount;
  config.seed = 9;
  config.fault = FaultRequest{faults::FaultType::kDiskHog,
                              DefaultFaultWindow(faults::FaultType::kDiskHog)};
  Result<RunTrace> trace = SimulateRun(config);
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(trace.value().fault.has_value());
  EXPECT_EQ(trace.value().fault->type, faults::FaultType::kDiskHog);
}

TEST(RunnerTest, FaultStretchesExecutionTime) {
  RunConfig normal;
  normal.workload = workload::WorkloadType::kWordCount;
  normal.seed = 11;
  RunConfig faulty = normal;
  faulty.fault = FaultRequest{faults::FaultType::kCpuHog,
                              DefaultFaultWindow(faults::FaultType::kCpuHog)};
  const double t_normal = SimulateRun(normal).value().duration_seconds;
  const double t_faulty = SimulateRun(faulty).value().duration_seconds;
  EXPECT_GT(t_faulty, t_normal * 1.1);
}

TEST(RunnerTest, DataScaleStretchesBatchJobsLinearly) {
  RunConfig config;
  config.workload = workload::WorkloadType::kGrep;
  config.seed = 21;
  const double t1 = SimulateRun(config).value().duration_seconds;
  config.data_scale = 2.0;
  const double t2 = SimulateRun(config).value().duration_seconds;
  config.data_scale = 0.5;
  const double t_half = SimulateRun(config).value().duration_seconds;
  // T = I * CPI * C: double the data, roughly double the time.
  EXPECT_NEAR(t2 / t1, 2.0, 0.3);
  EXPECT_NEAR(t_half / t1, 0.5, 0.2);
}

TEST(RunnerTest, DataScaleValidated) {
  RunConfig config;
  config.workload = workload::WorkloadType::kGrep;
  config.data_scale = 0.0;
  EXPECT_FALSE(SimulateRun(config).ok());
}

TEST(RunnerTest, InapplicableFaultRejected) {
  RunConfig config;
  config.workload = workload::WorkloadType::kWordCount;
  config.fault = FaultRequest{faults::FaultType::kOverload,
                              DefaultFaultWindow(faults::FaultType::kOverload)};
  EXPECT_FALSE(SimulateRun(config).ok());
}

TEST(RunnerTest, MultiFaultRunRecordsAllGroundTruths) {
  RunConfig config;
  config.workload = workload::WorkloadType::kWordCount;
  config.seed = 31;
  config.fault = FaultRequest{faults::FaultType::kCpuHog,
                              DefaultFaultWindow(faults::FaultType::kCpuHog)};
  config.extra_faults.push_back(
      FaultRequest{faults::FaultType::kMemHog,
                   DefaultFaultWindow(faults::FaultType::kMemHog)});
  Result<RunTrace> trace = SimulateRun(config);
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace.value().injected.size(), 2u);
  EXPECT_EQ(trace.value().injected[0].type, faults::FaultType::kCpuHog);
  EXPECT_EQ(trace.value().injected[1].type, faults::FaultType::kMemHog);
  ASSERT_TRUE(trace.value().fault.has_value());
  EXPECT_EQ(trace.value().fault->type, faults::FaultType::kCpuHog);
}

TEST(RunnerTest, MultiFaultValidatesEveryRequest) {
  RunConfig config;
  config.workload = workload::WorkloadType::kWordCount;
  config.fault = FaultRequest{faults::FaultType::kCpuHog,
                              DefaultFaultWindow(faults::FaultType::kCpuHog)};
  config.extra_faults.push_back(
      FaultRequest{faults::FaultType::kOverload,  // batch: inapplicable
                   DefaultFaultWindow(faults::FaultType::kOverload)});
  EXPECT_FALSE(SimulateRun(config).ok());
}

TEST(RunnerTest, SingleFaultTraceHasSingletonInjectedList) {
  RunConfig config;
  config.workload = workload::WorkloadType::kWordCount;
  config.seed = 32;
  config.fault = FaultRequest{faults::FaultType::kDiskHog,
                              DefaultFaultWindow(faults::FaultType::kDiskHog)};
  Result<RunTrace> trace = SimulateRun(config);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace.value().injected.size(), 1u);
}

TEST(RunnerTest, DefaultWindowTargetsNameNodeForNetFaults) {
  EXPECT_EQ(DefaultFaultWindow(faults::FaultType::kNetDrop).target_node, 0u);
  EXPECT_EQ(DefaultFaultWindow(faults::FaultType::kNetDelay).target_node, 0u);
  EXPECT_EQ(DefaultFaultWindow(faults::FaultType::kCpuHog).target_node, 1u);
  EXPECT_EQ(DefaultFaultWindow(faults::FaultType::kCpuHog).duration_ticks, 30);
}

}  // namespace
}  // namespace invarnetx::telemetry
