#include "core/association.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/assoc_cache.h"
#include "mic/mic.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace invarnetx::core {
namespace {

telemetry::NodeTrace RandomNode(uint64_t seed, int ticks = 64) {
  Rng rng(seed);
  telemetry::NodeTrace node;
  node.ip = "10.0.0.7";
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    std::vector<double>& series = node.metrics[m];
    for (int t = 0; t < ticks; ++t) {
      series.push_back(50.0 + 10.0 * rng.Gaussian());
    }
  }
  return node;
}

bool SameBytes(const AssociationMatrix& a, const AssociationMatrix& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// ------------------------------------------------- parallel determinism --

TEST(AssociationParallelTest, MatrixBitIdenticalAcrossThreadCounts) {
  const telemetry::NodeTrace node = RandomNode(42);
  std::unique_ptr<AssociationEngine> engine =
      AssociationEngine::Make(AssociationEngineType::kMic);
  AssociationOptions serial{.num_threads = 1, .use_cache = false};
  Result<AssociationMatrix> reference =
      ComputeAssociationMatrix(node, *engine, serial);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (int threads : {2, 8}) {
    AssociationOptions options{.num_threads = threads, .use_cache = false};
    Result<AssociationMatrix> parallel =
        ComputeAssociationMatrix(node, *engine, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_TRUE(SameBytes(reference.value(), parallel.value()))
        << "matrix differs from serial at " << threads << " threads";
  }
}

TEST(AssociationParallelTest, ErrorsMatchSerialAcrossThreadCounts) {
  // Metric 0 is shorter than the rest, so every pair touching it fails
  // inside worker context; all thread counts must surface the same error
  // (pair index 0 = metrics (0, 1) is the lowest failing task).
  telemetry::NodeTrace node = RandomNode(43);
  node.metrics[0].pop_back();
  std::unique_ptr<AssociationEngine> engine =
      AssociationEngine::Make(AssociationEngineType::kMic);
  std::string serial_message;
  for (int threads : {1, 2, 8}) {
    AssociationOptions options{.num_threads = threads, .use_cache = false};
    Result<AssociationMatrix> result =
        ComputeAssociationMatrix(node, *engine, options);
    ASSERT_FALSE(result.ok()) << threads << " threads";
    if (serial_message.empty()) {
      serial_message = result.status().ToString();
    } else {
      EXPECT_EQ(result.status().ToString(), serial_message)
          << threads << " threads";
    }
  }
}

// --------------------------------------------------------- score cache --

TEST(AssociationCacheTest, WarmRunIsBitIdenticalAndHits) {
  AssociationScoreCache& cache = AssociationScoreCache::Shared();
  cache.Clear();
  const telemetry::NodeTrace node = RandomNode(44);
  std::unique_ptr<AssociationEngine> engine =
      AssociationEngine::Make(AssociationEngineType::kMic);

  AssociationOptions cached{.num_threads = 1, .use_cache = true};
  const uint64_t misses_before = cache.misses();
  Result<AssociationMatrix> cold = ComputeAssociationMatrix(node, *engine,
                                                            cached);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cache.misses() - misses_before,
            static_cast<uint64_t>(telemetry::kNumMetricPairs));

  const uint64_t hits_before = cache.hits();
  Result<AssociationMatrix> warm = ComputeAssociationMatrix(node, *engine,
                                                            cached);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cache.hits() - hits_before,
            static_cast<uint64_t>(telemetry::kNumMetricPairs));
  EXPECT_TRUE(SameBytes(cold.value(), warm.value()));

  // And the cached result matches a cache-off compute exactly.
  AssociationOptions uncached{.num_threads = 1, .use_cache = false};
  Result<AssociationMatrix> direct =
      ComputeAssociationMatrix(node, *engine, uncached);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(SameBytes(direct.value(), warm.value()));
}

TEST(AssociationCacheTest, HashSeparatesInputs) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {4.0, 3.0, 2.0, 1.0};
  const PairScoreKey base = HashSeriesPair("mic", x, y);
  EXPECT_EQ(HashSeriesPair("mic", x, y), base);  // deterministic
  EXPECT_FALSE(HashSeriesPair("ensemble", x, y) == base);  // engine keyed
  EXPECT_FALSE(HashSeriesPair("mic", y, x) == base);       // order matters
  std::vector<double> x2 = x;
  x2[3] = 4.0000001;
  EXPECT_FALSE(HashSeriesPair("mic", x2, y) == base);  // content keyed
}

TEST(AssociationCacheTest, InsertLookupClear) {
  AssociationScoreCache cache;
  const PairScoreKey key = HashSeriesPair("mic", {1, 2, 3, 4}, {2, 4, 6, 8});
  EXPECT_FALSE(cache.Lookup(key).has_value());
  cache.Insert(key, 0.625);
  ASSERT_TRUE(cache.Lookup(key).has_value());
  EXPECT_EQ(*cache.Lookup(key), 0.625);
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(key).has_value());
}

TEST(AssociationCacheTest, SeriesDigestKeysAreOrderAndEngineSensitive) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {4.0, 3.0, 2.0, 1.0};
  const SeriesDigest dx = HashSeries(x);
  const SeriesDigest dy = HashSeries(y);
  EXPECT_TRUE(HashSeries(x) == dx);   // deterministic
  EXPECT_FALSE(dx == dy);             // content keyed
  std::vector<double> x2 = x;
  x2[3] = 4.0000001;
  EXPECT_FALSE(HashSeries(x2) == dx);  // one-ulp-scale change separates

  const PairScoreKey base = CombinePairKey("mic", dx, dy);
  EXPECT_EQ(CombinePairKey("mic", dx, dy), base);          // deterministic
  EXPECT_FALSE(CombinePairKey("mic", dy, dx) == base);     // order matters
  EXPECT_FALSE(CombinePairKey("ensemble", dx, dy) == base);  // engine keyed
  EXPECT_FALSE(CombinePairKey("mic", HashSeries(x2), dy) == base);
}

TEST(AssociationCacheTest, NegativeZeroDigestsAsPositiveZero) {
  // Regression: digests used to hash raw double bytes, so -0.0 and 0.0 -
  // numerically equal, and scored identically by every engine - produced
  // different digests. That missed the cache and, worse, read as "dirty"
  // to the incremental retrain path.
  const std::vector<double> pos = {0.0, 1.0, 2.0, 3.0};
  std::vector<double> neg = pos;
  neg[0] = -0.0;
  EXPECT_TRUE(HashSeries(pos) == HashSeries(neg));
  EXPECT_EQ(HashSeriesPair("mic", pos, pos), HashSeriesPair("mic", neg, neg));
  // A genuinely different value still separates.
  std::vector<double> other = pos;
  other[0] = 1e-300;
  EXPECT_FALSE(HashSeries(other) == HashSeries(pos));
}

TEST(AssociationCacheTest, FullShardRetainsRecentlyTouchedKeys) {
  // Bounded eviction: a full shard drops its least-recently-touched half,
  // not the whole shard (the old wholesale flush collapsed the hit rate to
  // ~0 exactly when the working set reached capacity). Keys are crafted to
  // land in one shard (ShardFor uses key.lo mod the shard count).
  AssociationScoreCache cache(8);
  std::vector<PairScoreKey> keys;
  for (uint64_t i = 0; i < 8; ++i) {
    keys.push_back(PairScoreKey{16 * i, 1000 + i});
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    cache.Insert(keys[i], static_cast<double>(i));
  }
  ASSERT_EQ(cache.size(), 8u);
  // Touch the second half: these are now the shard's hot keys.
  for (size_t i = 4; i < 8; ++i) {
    ASSERT_TRUE(cache.Lookup(keys[i]).has_value());
  }
  // Overflow the shard: the untouched first half is evicted, the hot half
  // and the new key are retained.
  const PairScoreKey fresh{16 * 8, 1008};
  cache.Insert(fresh, 8.0);
  EXPECT_EQ(cache.flushes(), 1u);
  EXPECT_EQ(cache.evicted(), 4u);
  EXPECT_EQ(cache.size(), 5u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(cache.Lookup(keys[i]).has_value()) << "cold key " << i;
  }
  for (size_t i = 4; i < 8; ++i) {
    ASSERT_TRUE(cache.Lookup(keys[i]).has_value()) << "hot key " << i;
    EXPECT_EQ(*cache.Lookup(keys[i]), static_cast<double>(i));
  }
  ASSERT_TRUE(cache.Lookup(fresh).has_value());
  EXPECT_EQ(*cache.Lookup(fresh), 8.0);
}

// ------------------------------------------------- incremental mining --

TEST(AssociationIncrementalTest, UnchangedPriorReusesEveryPair) {
  const telemetry::NodeTrace node = RandomNode(71);
  std::unique_ptr<AssociationEngine> engine =
      AssociationEngine::Make(AssociationEngineType::kMic);
  AssociationOptions options{.num_threads = 1, .use_cache = false};

  MatrixMiningRecord record;
  Result<AssociationMatrix> cold = ComputeAssociationMatrix(
      node, *engine, options, nullptr, &record, nullptr);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_TRUE(SameBytes(cold.value(), record.matrix));

  IncrementalMatrixStats stats;
  Result<AssociationMatrix> warm = ComputeAssociationMatrix(
      node, *engine, options, &record, nullptr, &stats);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(stats.reused, telemetry::kNumMetricPairs);
  EXPECT_EQ(stats.rescored, 0);
  EXPECT_TRUE(SameBytes(cold.value(), warm.value()));
}

TEST(AssociationIncrementalTest, OneDirtyMetricRescoresExactly25Pairs) {
  const telemetry::NodeTrace base = RandomNode(72);
  std::unique_ptr<AssociationEngine> engine =
      AssociationEngine::Make(AssociationEngineType::kMic);
  AssociationOptions serial{.num_threads = 1, .use_cache = false};

  MatrixMiningRecord record;
  ASSERT_TRUE(ComputeAssociationMatrix(base, *engine, serial, nullptr,
                                       &record, nullptr)
                  .ok());

  telemetry::NodeTrace perturbed = base;
  for (double& v : perturbed.metrics[11]) v += 0.5;
  Result<AssociationMatrix> cold =
      ComputeAssociationMatrix(perturbed, *engine, serial);
  ASSERT_TRUE(cold.ok());

  // The incremental result must be byte-identical to the cold recompute at
  // every thread count, rescoring only the 25 pairs involving the dirty
  // metric.
  for (int threads : {1, 2, 8}) {
    AssociationOptions options{.num_threads = threads, .use_cache = false};
    IncrementalMatrixStats stats;
    MatrixMiningRecord next;
    Result<AssociationMatrix> incremental = ComputeAssociationMatrix(
        perturbed, *engine, options, &record, &next, &stats);
    ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
    EXPECT_EQ(stats.rescored, telemetry::kNumMetrics - 1)
        << threads << " threads";
    EXPECT_EQ(stats.reused,
              telemetry::kNumMetricPairs - (telemetry::kNumMetrics - 1));
    EXPECT_TRUE(SameBytes(cold.value(), incremental.value()))
        << threads << " threads";
    // The refreshed record is usable as the next prior.
    EXPECT_TRUE(SameBytes(incremental.value(), next.matrix));
  }
}

TEST(AssociationIncrementalTest, OracleDetectsCorruptPrior) {
  const telemetry::NodeTrace node = RandomNode(73);
  std::unique_ptr<AssociationEngine> engine =
      AssociationEngine::Make(AssociationEngineType::kMic);
  AssociationOptions options{.num_threads = 1, .use_cache = false};
  MatrixMiningRecord record;
  ASSERT_TRUE(ComputeAssociationMatrix(node, *engine, options, nullptr,
                                       &record, nullptr)
                  .ok());

  // A clean pass under the oracle succeeds...
  options.verify_incremental = true;
  EXPECT_TRUE(
      ComputeAssociationMatrix(node, *engine, options, &record, nullptr,
                               nullptr)
          .ok());

  // ...and a corrupted prior score (reused verbatim because its digests
  // still match) is caught as a byte mismatch against the cold recompute.
  record.matrix[0] += 1.0;
  Result<AssociationMatrix> corrupt = ComputeAssociationMatrix(
      node, *engine, options, &record, nullptr, nullptr);
  EXPECT_FALSE(corrupt.ok());
}

// ------------------------------------------ workspace kernel exactness --

// The tentpole guarantee: the workspace kernel, hinted degeneracy
// short-circuit, and digest-derived cache keys must leave every
// association matrix byte-identical to the pre-workspace path - modeled
// here by mic::MicReference plus the per-pair degeneracy rule - across
// random seeds, thread counts, and cache state.
TEST(AssociationExactnessTest, MatrixMatchesReferenceKernel) {
  std::unique_ptr<AssociationEngine> engine =
      AssociationEngine::Make(AssociationEngineType::kMic);
  for (uint64_t seed : {97u, 403u}) {
    telemetry::NodeTrace node = RandomNode(seed);
    // Stress degenerate and heavily tied metrics too.
    node.metrics[3].assign(node.metrics[3].size(), 7.25);
    for (double& v : node.metrics[5]) v = std::floor(v / 5.0) * 5.0;

    AssociationMatrix reference(telemetry::kNumMetricPairs, 0.0);
    for (int pair = 0; pair < telemetry::kNumMetricPairs; ++pair) {
      int a = 0, b = 0;
      telemetry::PairFromIndex(pair, &a, &b);
      const std::vector<double>& x = node.metrics[static_cast<size_t>(a)];
      const std::vector<double>& y = node.metrics[static_cast<size_t>(b)];
      if (IsDegenerateSeries(x) || IsDegenerateSeries(y)) continue;
      reference[static_cast<size_t>(pair)] =
          mic::MicReference(x, y).value().mic;
    }

    AssociationScoreCache::Shared().Clear();
    for (int threads : {1, 2, 8}) {
      for (bool use_cache : {false, true}) {
        AssociationOptions options{.num_threads = threads,
                                   .use_cache = use_cache};
        Result<AssociationMatrix> matrix =
            ComputeAssociationMatrix(node, *engine, options);
        ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();
        EXPECT_TRUE(SameBytes(reference, matrix.value()))
            << "seed " << seed << ", " << threads << " threads, cache "
            << (use_cache ? "on" : "off");
      }
    }
    // Warm-cache rerun (every pair hits) must still be byte-identical.
    AssociationOptions warm{.num_threads = 4, .use_cache = true};
    Result<AssociationMatrix> warm_matrix =
        ComputeAssociationMatrix(node, *engine, warm);
    ASSERT_TRUE(warm_matrix.ok());
    EXPECT_TRUE(SameBytes(reference, warm_matrix.value())) << "warm cache";
  }
}

// ------------------------------------------------- degenerate shortcut --

TEST(DegenerateSeriesTest, ClassifiesSeries) {
  EXPECT_TRUE(IsDegenerateSeries({}));
  EXPECT_TRUE(IsDegenerateSeries({3.0}));
  EXPECT_TRUE(IsDegenerateSeries(std::vector<double>(64, 7.5)));
  // Constant plus float-noise jitter: variance ~1e-30 relative to scale.
  std::vector<double> jitter(64, 5.0);
  for (size_t i = 0; i < jitter.size(); ++i) {
    jitter[i] += (i % 2 == 0 ? 1.0 : -1.0) * 1e-15;
  }
  EXPECT_TRUE(IsDegenerateSeries(jitter));
  // Small but genuine variation is not degenerate.
  std::vector<double> varied;
  for (int i = 0; i < 64; ++i) varied.push_back(5.0 + 0.001 * i);
  EXPECT_FALSE(IsDegenerateSeries(varied));
}

TEST(DegenerateSeriesTest, EnginesScoreDegeneratePairsZero) {
  std::vector<double> jitter(64, 5.0);
  for (size_t i = 0; i < jitter.size(); ++i) {
    jitter[i] += (i % 2 == 0 ? 1.0 : -1.0) * 1e-15;
  }
  std::vector<double> varied;
  for (int i = 0; i < 64; ++i) varied.push_back(0.5 * i);

  for (AssociationEngineType type :
       {AssociationEngineType::kMic, AssociationEngineType::kEnsemble,
        AssociationEngineType::kArx}) {
    std::unique_ptr<AssociationEngine> engine = AssociationEngine::Make(type);
    Result<double> score = engine->Score(jitter, varied);
    ASSERT_TRUE(score.ok()) << engine->name();
    EXPECT_EQ(score.value(), 0.0) << engine->name();
    score = engine->Score(varied, jitter);
    ASSERT_TRUE(score.ok()) << engine->name();
    EXPECT_EQ(score.value(), 0.0) << engine->name();
  }
}

}  // namespace
}  // namespace invarnetx::core
