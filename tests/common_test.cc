#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"

namespace invarnetx {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NumericalError("").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(5);
  b.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += child.NextU64() == b.NextU64();
  EXPECT_LT(equal, 5);
}

// ---------------------------------------------------------------- Matrix --

TEST(MatrixTest, IdentityMultiplication) {
  Matrix id = Matrix::Identity(3);
  Matrix m(3, 3);
  int v = 1;
  for (size_t r = 0; r < 3; ++r)
    for (size_t c = 0; c < 3; ++c) m(r, c) = v++;
  Matrix prod = id.Multiply(m);
  for (size_t r = 0; r < 3; ++r)
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(prod(r, c), m(r, c));
}

TEST(MatrixTest, TransposeSwapsIndices) {
  Matrix m(2, 3);
  m(0, 1) = 5.0;
  m(1, 2) = 7.0;
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(2, 1), 7.0);
}

TEST(MatrixTest, MultiplyVec) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 3.0;
  m(1, 1) = 4.0;
  std::vector<double> out = m.MultiplyVec({1.0, 1.0});
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
}

TEST(LinearSolveTest, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  Result<std::vector<double>> x = SolveLinearSystem(a, {5.0, 10.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-9);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-9);
}

TEST(LinearSolveTest, RejectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  Result<std::vector<double>> x = SolveLinearSystem(a, {1.0, 2.0});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kNumericalError);
}

TEST(LinearSolveTest, RejectsShapeMismatch) {
  Matrix a(2, 3);
  EXPECT_FALSE(SolveLinearSystem(a, {1.0, 2.0}).ok());
}

TEST(LinearSolveTest, NeedsPivoting) {
  // Zero on the initial diagonal forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  Result<std::vector<double>> x = SolveLinearSystem(a, {2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 3.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 2.0, 1e-12);
}

TEST(LeastSquaresTest, RecoversLine) {
  // y = 2 + 3x, exactly.
  Matrix x(5, 2);
  std::vector<double> y(5);
  for (int i = 0; i < 5; ++i) {
    x(static_cast<size_t>(i), 0) = 1.0;
    x(static_cast<size_t>(i), 1) = i;
    y[static_cast<size_t>(i)] = 2.0 + 3.0 * i;
  }
  Result<std::vector<double>> beta = LeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR(beta.value()[0], 2.0, 1e-6);
  EXPECT_NEAR(beta.value()[1], 3.0, 1e-6);
}

TEST(LeastSquaresTest, RejectsUnderdetermined) {
  Matrix x(2, 3);
  EXPECT_FALSE(LeastSquares(x, {1.0, 2.0}).ok());
}

// ----------------------------------------------------------------- Stats --

TEST(StatsTest, MeanAndVariance) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(v), 3.0);
  EXPECT_DOUBLE_EQ(Variance(v), 2.0);
  EXPECT_NEAR(SampleStdDev(v), std::sqrt(2.5), 1e-12);
}

TEST(StatsTest, EmptySeriesSafe) {
  std::vector<double> v;
  EXPECT_DOUBLE_EQ(Mean(v), 0.0);
  EXPECT_DOUBLE_EQ(Variance(v), 0.0);
  EXPECT_DOUBLE_EQ(Min(v), 0.0);
  EXPECT_DOUBLE_EQ(Max(v), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4};
  Result<double> p50 = Percentile(v, 50.0);
  ASSERT_TRUE(p50.ok());
  EXPECT_DOUBLE_EQ(p50.value(), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0).value(), 4.0);
}

TEST(StatsTest, PercentileRejectsBadInput) {
  EXPECT_FALSE(Percentile({}, 50.0).ok());
  EXPECT_FALSE(Percentile({1.0}, -1.0).ok());
  EXPECT_FALSE(Percentile({1.0}, 101.0).ok());
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y).value(), 1.0, 1e-12);
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, neg).value(), -1.0, 1e-12);
}

TEST(StatsTest, PearsonZeroVarianceIsZero) {
  std::vector<double> x = {1, 1, 1, 1};
  std::vector<double> y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y).value(), 0.0);
}

TEST(StatsTest, SpearmanMonotoneNonlinear) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 8, 27, 64, 125};  // monotone but nonlinear
  EXPECT_NEAR(SpearmanCorrelation(x, y).value(), 1.0, 1e-12);
}

TEST(StatsTest, AverageRanksHandlesTies) {
  std::vector<double> v = {10, 20, 20, 30};
  std::vector<double> ranks = AverageRanks(v);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(StatsTest, PolyFitRecoversQuadratic) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i * 0.5);
    y.push_back(1.0 - 2.0 * (i * 0.5) + 0.5 * (i * 0.5) * (i * 0.5));
  }
  Result<std::vector<double>> c = PolyFit(x, y, 2);
  ASSERT_TRUE(c.ok());
  // LeastSquares applies a tiny stabilizing ridge, so recovery is to ~1e-4.
  EXPECT_NEAR(c.value()[0], 1.0, 1e-4);
  EXPECT_NEAR(c.value()[1], -2.0, 1e-4);
  EXPECT_NEAR(c.value()[2], 0.5, 1e-4);
  EXPECT_NEAR(PolyEval(c.value(), 2.0), 1.0 - 4.0 + 2.0, 1e-4);
}

TEST(StatsTest, PolyFitRejectsTooFewPoints) {
  EXPECT_FALSE(PolyFit({1.0, 2.0}, {1.0, 2.0}, 2).ok());
}

TEST(StatsTest, NormalizeToMin) {
  Result<std::vector<double>> n = NormalizeToMin({2.0, 4.0, 6.0});
  ASSERT_TRUE(n.ok());
  EXPECT_DOUBLE_EQ(n.value()[0], 1.0);
  EXPECT_DOUBLE_EQ(n.value()[2], 3.0);
  EXPECT_FALSE(NormalizeToMin({0.0, 1.0}).ok());
  EXPECT_FALSE(NormalizeToMin({}).ok());
}

TEST(StatsTest, MinMaxScale) {
  std::vector<double> s = MinMaxScale({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  EXPECT_DOUBLE_EQ(s[1], 0.5);
  EXPECT_DOUBLE_EQ(s[2], 1.0);
  // Constant series map to zeros.
  std::vector<double> c = MinMaxScale({5.0, 5.0});
  EXPECT_DOUBLE_EQ(c[0], 0.0);
  EXPECT_DOUBLE_EQ(c[1], 0.0);
}

TEST(StatsTest, WilsonIntervalKnownValues) {
  // 8/10 successes: the 95% Wilson interval is approximately [0.49, 0.94].
  Result<ProportionInterval> ci = WilsonInterval(8, 10);
  ASSERT_TRUE(ci.ok());
  EXPECT_NEAR(ci.value().lo, 0.49, 0.02);
  EXPECT_NEAR(ci.value().hi, 0.94, 0.02);
  // Extremes stay within [0, 1] and are asymmetric near the boundary.
  Result<ProportionInterval> zero = WilsonInterval(0, 10);
  ASSERT_TRUE(zero.ok());
  EXPECT_DOUBLE_EQ(zero.value().lo, 0.0);
  EXPECT_GT(zero.value().hi, 0.2);
  Result<ProportionInterval> all = WilsonInterval(10, 10);
  ASSERT_TRUE(all.ok());
  EXPECT_DOUBLE_EQ(all.value().hi, 1.0);
  EXPECT_LT(all.value().lo, 0.8);
}

TEST(StatsTest, WilsonIntervalValidates) {
  EXPECT_FALSE(WilsonInterval(1, 0).ok());
  EXPECT_FALSE(WilsonInterval(-1, 10).ok());
  EXPECT_FALSE(WilsonInterval(11, 10).ok());
}

TEST(StatsTest, WilsonIntervalNarrowsWithSampleSize) {
  const ProportionInterval small = WilsonInterval(8, 10).value();
  const ProportionInterval big = WilsonInterval(80, 100).value();
  EXPECT_LT(big.hi - big.lo, small.hi - small.lo);
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, RendersAlignedTable) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  TextTable t({"a", "b"});
  t.AddRow({"x,y", "say \"hi\""});
  const std::string csv = t.RenderCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(0.912, 1), "91.2%");
}

}  // namespace
}  // namespace invarnetx
