#include <gtest/gtest.h>

#include "cluster/cpi.h"
#include "cluster/engine.h"
#include "cluster/node.h"
#include "common/random.h"

namespace invarnetx::cluster {
namespace {

// ---------------------------------------------------------------- Cluster --

TEST(ClusterTest, TestbedLayout) {
  Cluster testbed = Cluster::MakeTestbed();
  EXPECT_EQ(testbed.size(), 5u);
  EXPECT_EQ(testbed.num_slaves(), 4u);
  EXPECT_EQ(testbed.master().role, NodeRole::kMaster);
  EXPECT_EQ(testbed.master().ip, "10.0.0.1");
  for (size_t i = 0; i < testbed.num_slaves(); ++i) {
    EXPECT_EQ(testbed.slave(i).role, NodeRole::kSlave);
  }
  EXPECT_EQ(testbed.slave(0).ip, "10.0.0.2");
  EXPECT_EQ(testbed.slave(3).ip, "10.0.0.5");
}

TEST(ClusterTest, TestbedIsHeterogeneous) {
  Cluster testbed = Cluster::MakeTestbed();
  bool differs = false;
  for (size_t i = 1; i < testbed.num_slaves(); ++i) {
    if (testbed.slave(i).spec.cores != testbed.slave(0).spec.cores ||
        testbed.slave(i).spec.cpi_factor != testbed.slave(0).spec.cpi_factor) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(ClusterTest, UniformTestbedUsesGivenSpec) {
  NodeSpec spec;
  spec.cores = 16;
  Cluster testbed = Cluster::MakeUniformTestbed(3, spec);
  EXPECT_EQ(testbed.size(), 4u);
  for (const SimNode& node : testbed.nodes()) {
    EXPECT_EQ(node.spec.cores, 16);
  }
}

TEST(ClusterTest, IndexOf) {
  Cluster testbed = Cluster::MakeTestbed();
  Result<size_t> found = testbed.IndexOf("10.0.0.3");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 2u);
  EXPECT_FALSE(testbed.IndexOf("10.9.9.9").ok());
}

TEST(SimNodeTest, InstructionRateAndDiskScale) {
  SimNode node;
  node.spec.cores = 8;
  node.spec.freq_ghz = 2.0;
  EXPECT_DOUBLE_EQ(node.InstructionsPerSecondAtCpi1(), 16e9);
  node.spec.disk_mbps = 60.0;
  EXPECT_DOUBLE_EQ(node.DiskDemandScale(), 2.0);
}

// -------------------------------------------------------------------- CPI --

SimNode ReferenceNode() {
  SimNode node;
  node.drivers.cpi_base = 1.0;
  return node;
}

TEST(CpiTest, BaselineIsCpiBaseTimesMachineFactor) {
  SimNode node = ReferenceNode();
  node.drivers.cpu_task = 0.5;
  const CpiSample sample = ComputeCpi(node);
  EXPECT_NEAR(sample.cpi, node.spec.cpi_factor, 1e-9);
  EXPECT_DOUBLE_EQ(sample.progress_share, 1.0);
}

TEST(CpiTest, HeadroomCpuExtraDoesNotRaiseCpi) {
  // The Fig. 2 property: a disturbance that fits in the free cores leaves
  // CPI untouched.
  SimNode node = ReferenceNode();
  node.drivers.cpu_task = 0.6;
  const double base = ComputeCpi(node).cpi;
  node.drivers.cpu_extra = 0.3;  // 0.6 + 0.3 < 1: fits
  EXPECT_NEAR(ComputeCpi(node).cpi, base, 1e-9);
}

TEST(CpiTest, OversubscriptionRaisesCpi) {
  SimNode node = ReferenceNode();
  node.drivers.cpu_task = 0.6;
  node.drivers.cpu_extra = 0.8;  // 1.4 > 1: cache/context interference
  EXPECT_GT(ComputeCpi(node).cpi, 1.1);
}

TEST(CpiTest, CachePressureRaisesCpi) {
  SimNode node = ReferenceNode();
  node.drivers.cpu_task = 0.5;
  node.drivers.cache_pressure = 0.5;
  EXPECT_GT(ComputeCpi(node).cpi, 1.3);
}

TEST(CpiTest, MemoryPressureRaisesCpiOnlyPastThreshold) {
  SimNode node = ReferenceNode();
  node.drivers.cpu_task = 0.5;
  node.drivers.mem_task_mb = 8000.0;  // (8000+1200)/16384 = 56%: fine
  const double low = ComputeCpi(node).cpi;
  node.drivers.mem_extra_mb = 7000.0;  // ~99%: thrashing
  const double high = ComputeCpi(node).cpi;
  EXPECT_NEAR(low, node.spec.cpi_factor, 1e-9);
  EXPECT_GT(high, low * 1.2);
}

TEST(CpiTest, DiskSaturationRaisesCpi) {
  SimNode node = ReferenceNode();
  node.drivers.cpu_task = 0.5;
  node.drivers.io_read = 0.8;
  node.drivers.io_write = 0.6;  // total 1.4 > capacity
  EXPECT_GT(ComputeCpi(node).cpi, 1.1);
}

TEST(CpiTest, SlowDiskSaturatesEarlier) {
  SimNode fast = ReferenceNode();
  fast.drivers.cpu_task = 0.5;
  fast.drivers.io_read = 0.9;
  SimNode slow = fast;
  slow.spec.disk_mbps = 60.0;  // same demand, half the device
  EXPECT_GT(ComputeCpi(slow).cpi, ComputeCpi(fast).cpi);
}

TEST(CpiTest, NetworkFaultsNeedNetworkDependence) {
  SimNode node = ReferenceNode();
  node.drivers.cpu_task = 0.5;
  node.drivers.pkt_loss = 0.08;
  // No network demand: loss cannot stall anything.
  EXPECT_NEAR(ComputeCpi(node).cpi, node.spec.cpi_factor, 1e-9);
  node.drivers.net_in = 0.5;
  node.drivers.net_out = 0.5;
  EXPECT_GT(ComputeCpi(node).cpi, 1.3);
}

TEST(CpiTest, SuspensionExplodesMeasuredCpi) {
  SimNode node = ReferenceNode();
  node.drivers.cpu_task = 0.5;
  const double normal = ComputeCpi(node).cpi;
  node.drivers.suspended = true;
  const CpiSample suspended = ComputeCpi(node);
  EXPECT_GT(suspended.cpi, normal * 20.0);
  EXPECT_LT(suspended.progress_share, 0.05);
}

TEST(CpiTest, ProgressScaleInflatesCpi) {
  SimNode node = ReferenceNode();
  node.drivers.cpu_task = 0.5;
  node.drivers.progress_scale = 0.5;
  EXPECT_NEAR(ComputeCpi(node).cpi, 2.0 * node.spec.cpi_factor, 1e-9);
}

TEST(CpiTest, InstructionsRetiredScalesInverselyWithCpi) {
  SimNode node = ReferenceNode();
  node.drivers.cpu_task = 0.5;
  const CpiSample s1 = ComputeCpi(node);
  const double r1 = InstructionsRetired(node, s1, 10.0);
  node.drivers.cache_pressure = 1.0;
  const CpiSample s2 = ComputeCpi(node);
  const double r2 = InstructionsRetired(node, s2, 10.0);
  EXPECT_NEAR(r1 / r2, s2.cpi / s1.cpi, 1e-9);
}

// ----------------------------------------------------------------- engine --

class ConstantWorkload : public WorkloadModel {
 public:
  explicit ConstantWorkload(double budget) : budget_(budget) {}

  std::string name() const override { return "constant"; }
  void Step(int, Cluster* cluster, Rng*) override {
    ++steps_;
    for (size_t i = 1; i < cluster->size(); ++i) {
      cluster->node(i).drivers.cpu_task = 0.5;
      cluster->node(i).drivers.cpi_base = 1.0;
    }
  }
  void OnProgress(size_t node, double instructions) override {
    if (node > 0) retired_ += instructions;
  }
  bool Finished() const override { return retired_ >= budget_; }

  int steps_ = 0;
  double retired_ = 0.0;
  double budget_;
};

class CountingSink : public TelemetrySink {
 public:
  void Record(int, const Cluster&, const std::vector<CpiSample>&) override {
    ++records_;
  }
  int records_ = 0;
};

TEST(EngineTest, RunsUntilWorkloadFinishes) {
  Cluster testbed = Cluster::MakeTestbed();
  // Budget sized for ~10 ticks of 4 slaves at cpu 0.5, cpi ~ machine factor.
  ConstantWorkload workload(4 * 0.5 * 8 * 2.1e9 * 10.0 * 9.5);
  CountingSink sink;
  Rng rng(1);
  SimulationEngine engine;
  const EngineResult result =
      engine.Run(&testbed, &workload, {}, &sink, &rng);
  EXPECT_TRUE(result.workload_finished);
  EXPECT_GT(result.ticks_run, 5);
  EXPECT_LT(result.ticks_run, 20);
  EXPECT_EQ(sink.records_, result.ticks_run);
  EXPECT_DOUBLE_EQ(result.duration_seconds, result.ticks_run * 10.0);
}

TEST(EngineTest, MaxTicksCapsRun) {
  Cluster testbed = Cluster::MakeTestbed();
  ConstantWorkload workload(1e18);  // never finishes
  EngineConfig config;
  config.max_ticks = 7;
  SimulationEngine engine(config);
  Rng rng(2);
  const EngineResult result =
      engine.Run(&testbed, &workload, {}, nullptr, &rng);
  EXPECT_FALSE(result.workload_finished);
  EXPECT_EQ(result.ticks_run, 7);
}

class OneShotFault : public FaultInjector {
 public:
  std::string name() const override { return "one-shot"; }
  void Apply(int tick, Cluster* cluster, Rng*) override {
    if (tick == 2) cluster->node(1).drivers.cpu_extra = 0.9;
  }
};

TEST(EngineTest, FaultControlledFieldsResetEachTick) {
  // A fault that asserts cpu_extra only on tick 2 must leave no residue on
  // tick 3 - the engine clears fault-controlled fields every tick.
  Cluster testbed = Cluster::MakeTestbed();
  ConstantWorkload workload(1e18);

  class SpyingSink : public TelemetrySink {
   public:
    void Record(int tick, const Cluster& cluster,
                const std::vector<CpiSample>&) override {
      if (tick == 2) at2_ = cluster.node(1).drivers.cpu_extra;
      if (tick == 3) at3_ = cluster.node(1).drivers.cpu_extra;
    }
    double at2_ = -1.0, at3_ = -1.0;
  };

  OneShotFault fault;
  SpyingSink sink;
  EngineConfig config;
  config.max_ticks = 5;
  SimulationEngine engine(config);
  Rng rng(3);
  engine.Run(&testbed, &workload, {&fault}, &sink, &rng);
  EXPECT_DOUBLE_EQ(sink.at2_, 0.9);
  EXPECT_DOUBLE_EQ(sink.at3_, 0.0);
}

TEST(EngineTest, DeterministicGivenSeed) {
  auto run_once = [](uint64_t seed) {
    Cluster testbed = Cluster::MakeTestbed();
    ConstantWorkload workload(1e18);
    EngineConfig config;
    config.max_ticks = 10;
    SimulationEngine engine(config);
    Rng rng(seed);

    class CpiSink : public TelemetrySink {
     public:
      void Record(int, const Cluster&,
                  const std::vector<CpiSample>& cpi) override {
        last_ = cpi[1].cpi;
      }
      double last_ = 0.0;
    };
    CpiSink sink;
    engine.Run(&testbed, &workload, {}, &sink, &rng);
    return sink.last_;
  };
  EXPECT_DOUBLE_EQ(run_once(77), run_once(77));
  EXPECT_NE(run_once(77), run_once(78));
}

}  // namespace
}  // namespace invarnetx::cluster
