// Property-style suites (parameterized with TEST_P / INSTANTIATE_TEST_SUITE_P)
// covering invariants that must hold across whole input families rather than
// single examples.

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/runner.h"
#include "campaign/scenario.h"
#include "campaign/scoreboard.h"
#include "common/matrix.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/association.h"
#include "core/sigdb.h"
#include "mic/mic.h"
#include "telemetry/metrics.h"
#include "timeseries/arima.h"
#include "timeseries/diff.h"

namespace invarnetx {
namespace {

// ------------------------------------------------ MIC invariance sweeps --

struct MicCase {
  const char* name;
  int n;
  uint64_t seed;
  double coupling;  // 0 = independent, 1 = strongly coupled
};

class MicPropertyTest : public ::testing::TestWithParam<MicCase> {
 protected:
  void MakePair(std::vector<double>* x, std::vector<double>* y) const {
    const MicCase& c = GetParam();
    Rng rng(c.seed);
    for (int i = 0; i < c.n; ++i) {
      const double xi = rng.Gaussian(0.0, 1.0);
      x->push_back(xi);
      y->push_back(c.coupling * xi * xi +
                   (1.0 - c.coupling) * rng.Gaussian(0.0, 1.0));
    }
  }
};

TEST_P(MicPropertyTest, ScoreInUnitInterval) {
  std::vector<double> x, y;
  MakePair(&x, &y);
  const double score = mic::MicScore(x, y).value();
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);
}

TEST_P(MicPropertyTest, Symmetric) {
  std::vector<double> x, y;
  MakePair(&x, &y);
  EXPECT_DOUBLE_EQ(mic::MicScore(x, y).value(), mic::MicScore(y, x).value());
}

TEST_P(MicPropertyTest, InvariantUnderMonotoneTransformsOfX) {
  // MIC is grid-based on ranks, so strictly monotone transforms of either
  // axis leave the score unchanged.
  std::vector<double> x, y;
  MakePair(&x, &y);
  std::vector<double> ex;
  ex.reserve(x.size());
  for (double v : x) ex.push_back(std::exp(0.5 * v));
  EXPECT_NEAR(mic::MicScore(x, y).value(), mic::MicScore(ex, y).value(),
              1e-12);
}

TEST_P(MicPropertyTest, InvariantUnderAffineTransforms) {
  std::vector<double> x, y;
  MakePair(&x, &y);
  std::vector<double> scaled;
  scaled.reserve(y.size());
  for (double v : y) scaled.push_back(-3.0 * v + 11.0);
  EXPECT_NEAR(mic::MicScore(x, y).value(), mic::MicScore(x, scaled).value(),
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MicPropertyTest,
    ::testing::Values(MicCase{"small_indep", 40, 1, 0.0},
                      MicCase{"small_coupled", 40, 2, 1.0},
                      MicCase{"mid_indep", 100, 3, 0.0},
                      MicCase{"mid_half", 100, 4, 0.5},
                      MicCase{"mid_coupled", 100, 5, 1.0},
                      MicCase{"large_half", 250, 6, 0.5},
                      MicCase{"large_coupled", 250, 7, 1.0}),
    [](const ::testing::TestParamInfo<MicCase>& info) {
      return info.param.name;
    });

// ------------------------------------------- similarity metric properties --

class SimilarityPropertyTest
    : public ::testing::TestWithParam<core::SimilarityMetric> {};

TEST_P(SimilarityPropertyTest, RangeReflexivityAndSymmetry) {
  Rng rng(11);
  for (int round = 0; round < 50; ++round) {
    std::vector<uint8_t> a, b;
    const size_t len = 1 + rng.UniformInt(64);
    for (size_t i = 0; i < len; ++i) {
      a.push_back(rng.Bernoulli(0.3));
      b.push_back(rng.Bernoulli(0.3));
    }
    const double ab = core::TupleSimilarity(a, b, GetParam()).value();
    const double ba = core::TupleSimilarity(b, a, GetParam()).value();
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_DOUBLE_EQ(core::TupleSimilarity(a, a, GetParam()).value(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, SimilarityPropertyTest,
    ::testing::Values(core::SimilarityMetric::kJaccard,
                      core::SimilarityMetric::kDice,
                      core::SimilarityMetric::kCosine,
                      core::SimilarityMetric::kHamming),
    [](const ::testing::TestParamInfo<core::SimilarityMetric>& info) {
      return core::SimilarityMetricName(info.param);
    });

// ----------------------------------------------- ARIMA predictor sweeps --

class ArimaOrderPropertyTest
    : public ::testing::TestWithParam<ts::ArimaOrder> {};

TEST_P(ArimaOrderPropertyTest, PredictorMatchesInSamplePath) {
  // The streaming predictor and the batch PredictInSample must agree.
  Rng rng(21);
  std::vector<double> series;
  double level = 5.0;
  for (int i = 0; i < 120; ++i) {
    level += rng.Gaussian(0.02, 0.1);
    series.push_back(level);
  }
  Result<ts::ArimaModel> model = ts::ArimaModel::Fit(series, GetParam());
  ASSERT_TRUE(model.ok()) << GetParam().ToString();
  const std::vector<double> batch =
      model.value().PredictInSample(series).value();

  ts::ArimaPredictor predictor(model.value());
  for (size_t i = 0; i < series.size(); ++i) {
    const double streamed =
        predictor.Ready() ? predictor.PredictNext() : series[i];
    EXPECT_NEAR(streamed, batch[i], 1e-9) << "tick " << i;
    predictor.Observe(series[i]);
  }
}

TEST_P(ArimaOrderPropertyTest, ResidualsNonNegativeAndFiniteEverywhere) {
  Rng rng(22);
  std::vector<double> series;
  for (int i = 0; i < 150; ++i) series.push_back(rng.Gaussian(1.0, 0.2));
  Result<ts::ArimaModel> model = ts::ArimaModel::Fit(series, GetParam());
  ASSERT_TRUE(model.ok());
  const std::vector<double> residuals =
      model.value().AbsResiduals(series).value();
  for (double r : residuals) {
    EXPECT_GE(r, 0.0);
    EXPECT_TRUE(std::isfinite(r));
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrderSweep, ArimaOrderPropertyTest,
    ::testing::Values(ts::ArimaOrder{1, 0, 0}, ts::ArimaOrder{2, 0, 0},
                      ts::ArimaOrder{0, 0, 1}, ts::ArimaOrder{1, 0, 1},
                      ts::ArimaOrder{1, 1, 0}, ts::ArimaOrder{0, 1, 1},
                      ts::ArimaOrder{2, 1, 1}, ts::ArimaOrder{1, 2, 0}),
    [](const ::testing::TestParamInfo<ts::ArimaOrder>& info) {
      return "p" + std::to_string(info.param.p) + "d" +
             std::to_string(info.param.d) + "q" +
             std::to_string(info.param.q);
    });

// ------------------------------------------------- differencing round trip --

class DiffPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DiffPropertyTest, UndifferenceInvertsDifference) {
  const int d = GetParam();
  Rng rng(31);
  for (int round = 0; round < 20; ++round) {
    std::vector<double> series;
    const int n = d + 2 + static_cast<int>(rng.UniformInt(40));
    for (int i = 0; i < n; ++i) series.push_back(rng.Gaussian(0.0, 3.0));
    const std::vector<double> w = ts::Difference(series, d).value();
    std::vector<double> tail(series.begin(), series.end() - 1);
    EXPECT_NEAR(ts::Undifference(tail, d, w.back()).value(), series.back(),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(DSweep, DiffPropertyTest, ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------- stats properties --

TEST(StatsPropertyTest, PearsonBoundedAndScaleInvariant) {
  Rng rng(41);
  for (int round = 0; round < 30; ++round) {
    std::vector<double> x, y, y_scaled;
    for (int i = 0; i < 50; ++i) {
      x.push_back(rng.Gaussian(0, 1));
      y.push_back(0.3 * x.back() + rng.Gaussian(0, 1));
      y_scaled.push_back(4.0 * y.back() - 7.0);
    }
    const double r = PearsonCorrelation(x, y).value();
    EXPECT_GE(r, -1.0 - 1e-12);
    EXPECT_LE(r, 1.0 + 1e-12);
    EXPECT_NEAR(r, PearsonCorrelation(x, y_scaled).value(), 1e-9);
  }
}

TEST(StatsPropertyTest, PercentileMonotoneInP) {
  Rng rng(42);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.Gaussian(0, 1));
  double prev = Percentile(v, 0).value();
  for (int p = 5; p <= 100; p += 5) {
    const double current = Percentile(v, p).value();
    EXPECT_GE(current, prev);
    prev = current;
  }
}

TEST(StatsPropertyTest, SpearmanInvariantUnderMonotoneTransform) {
  Rng rng(43);
  std::vector<double> x, y, y_exp;
  for (int i = 0; i < 80; ++i) {
    x.push_back(rng.Gaussian(0, 1));
    y.push_back(x.back() + rng.Gaussian(0, 0.5));
    y_exp.push_back(std::exp(y.back()));
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y).value(),
              SpearmanCorrelation(x, y_exp).value(), 1e-9);
}

// --------------------------------------------------- solver properties --

TEST(SolverPropertyTest, SolutionSatisfiesSystem) {
  Rng rng(51);
  for (int round = 0; round < 40; ++round) {
    const size_t n = 2 + rng.UniformInt(6);
    Matrix a(n, n);
    std::vector<double> b(n);
    for (size_t r = 0; r < n; ++r) {
      b[r] = rng.Gaussian(0, 5);
      for (size_t col = 0; col < n; ++col) a(r, col) = rng.Gaussian(0, 2);
      a(r, r) += 3.0;  // keep it comfortably non-singular
    }
    const std::vector<double> x = SolveLinearSystem(a, b).value();
    const std::vector<double> ax = a.MultiplyVec(x);
    for (size_t r = 0; r < n; ++r) EXPECT_NEAR(ax[r], b[r], 1e-7);
  }
}

TEST(SolverPropertyTest, LeastSquaresResidualOrthogonalToColumns) {
  // The OLS normal equations make X'(y - X beta) ~ 0 (up to the tiny
  // stabilizing ridge).
  Rng rng(52);
  for (int round = 0; round < 20; ++round) {
    const size_t rows = 30, cols = 4;
    Matrix x(rows, cols);
    std::vector<double> y(rows);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) x(r, c) = rng.Gaussian(0, 1);
      y[r] = rng.Gaussian(0, 1);
    }
    const std::vector<double> beta = LeastSquares(x, y).value();
    const std::vector<double> fitted = x.MultiplyVec(beta);
    for (size_t c = 0; c < cols; ++c) {
      double dot = 0.0;
      for (size_t r = 0; r < rows; ++r) {
        dot += x(r, c) * (y[r] - fitted[r]);
      }
      EXPECT_NEAR(dot, 0.0, 1e-4);
    }
  }
}

TEST(SolverPropertyTest, LeastSquaresNeverBeatenByPerturbation) {
  // beta minimizes ||X beta - y||; nudging any coefficient cannot reduce
  // the residual norm (local optimality).
  Rng rng(53);
  Matrix x(25, 3);
  std::vector<double> y(25);
  for (size_t r = 0; r < 25; ++r) {
    for (size_t c = 0; c < 3; ++c) x(r, c) = rng.Gaussian(0, 1);
    y[r] = rng.Gaussian(0, 1);
  }
  std::vector<double> beta = LeastSquares(x, y).value();
  auto sse = [&](const std::vector<double>& b) {
    const std::vector<double> fitted = x.MultiplyVec(b);
    double acc = 0.0;
    for (size_t r = 0; r < 25; ++r) {
      acc += (y[r] - fitted[r]) * (y[r] - fitted[r]);
    }
    return acc;
  };
  const double best = sse(beta);
  for (size_t c = 0; c < 3; ++c) {
    for (double delta : {-0.05, 0.05}) {
      std::vector<double> nudged = beta;
      nudged[c] += delta;
      EXPECT_GE(sse(nudged), best - 1e-9);
    }
  }
}

// ----------------------------------------- association engine contracts --

class EngineContractTest
    : public ::testing::TestWithParam<core::AssociationEngineType> {};

TEST_P(EngineContractTest, ScoresInRangeAndDeterministic) {
  const auto engine = core::AssociationEngine::Make(GetParam());
  ASSERT_NE(engine, nullptr);
  Rng rng(61);
  for (int round = 0; round < 5; ++round) {
    std::vector<double> x, y;
    for (int i = 0; i < 60; ++i) {
      x.push_back(rng.Gaussian(0, 1));
      y.push_back(0.4 * x.back() + rng.Gaussian(0, 0.6));
    }
    const double a = engine->Score(x, y).value();
    const double b = engine->Score(x, y).value();
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST_P(EngineContractTest, ConstantSeriesScoreZero) {
  const auto engine = core::AssociationEngine::Make(GetParam());
  std::vector<double> constant(60, 3.0), varying;
  Rng rng(62);
  for (int i = 0; i < 60; ++i) varying.push_back(rng.Gaussian(0, 1));
  EXPECT_DOUBLE_EQ(engine->Score(constant, varying).value(), 0.0);
  EXPECT_DOUBLE_EQ(engine->Score(varying, constant).value(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineContractTest,
    ::testing::Values(core::AssociationEngineType::kMic,
                      core::AssociationEngineType::kArx,
                      core::AssociationEngineType::kEnsemble),
    [](const ::testing::TestParamInfo<core::AssociationEngineType>& info) {
      return core::AssociationEngineName(info.param);
    });

// ------------------------------------------- dirty-pair incremental law --

// The incremental retrain contract, checked per engine: perturbing exactly
// one metric dirties exactly the kNumMetrics-1 pairs involving it, every
// other pair is reused from the prior record, and the incremental matrix is
// byte-identical to a cold recompute at every thread count.
class DirtyPairPropertyTest
    : public ::testing::TestWithParam<core::AssociationEngineType> {
 protected:
  static telemetry::NodeTrace MakeNode(uint64_t seed) {
    Rng rng(seed);
    telemetry::NodeTrace node;
    node.ip = "10.1.0.1";
    for (int m = 0; m < telemetry::kNumMetrics; ++m) {
      double level = rng.Uniform(5.0, 50.0);
      for (int t = 0; t < 48; ++t) {
        level += rng.Gaussian(0.0, 0.5);
        node.metrics[m].push_back(level + std::sin(0.2 * t + m));
      }
    }
    return node;
  }
};

TEST_P(DirtyPairPropertyTest, OnePerturbedMetricDirtiesExactlyItsPairs) {
  const auto engine = core::AssociationEngine::Make(GetParam());
  ASSERT_NE(engine, nullptr);
  const telemetry::NodeTrace base = MakeNode(81);
  core::AssociationOptions serial{.num_threads = 1, .use_cache = false};

  core::MatrixMiningRecord prior;
  ASSERT_TRUE(core::ComputeAssociationMatrix(base, *engine, serial, nullptr,
                                             &prior, nullptr)
                  .ok());

  for (int dirty_metric : {0, 13, telemetry::kNumMetrics - 1}) {
    telemetry::NodeTrace perturbed = base;
    perturbed.metrics[dirty_metric][7] += 0.25;
    const Result<core::AssociationMatrix> cold =
        core::ComputeAssociationMatrix(perturbed, *engine, serial);
    ASSERT_TRUE(cold.ok());

    for (int threads : {1, 2, 8}) {
      core::AssociationOptions options{.num_threads = threads,
                                       .use_cache = false};
      core::IncrementalMatrixStats stats;
      const Result<core::AssociationMatrix> incremental =
          core::ComputeAssociationMatrix(perturbed, *engine, options, &prior,
                                         nullptr, &stats);
      ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
      EXPECT_EQ(stats.rescored, telemetry::kNumMetrics - 1)
          << "metric " << dirty_metric << ", " << threads << " threads";
      EXPECT_EQ(stats.reused,
                telemetry::kNumMetricPairs - (telemetry::kNumMetrics - 1));
      EXPECT_EQ(std::memcmp(cold.value().data(), incremental.value().data(),
                            cold.value().size() * sizeof(double)),
                0)
          << "metric " << dirty_metric << ", " << threads << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, DirtyPairPropertyTest,
    ::testing::Values(core::AssociationEngineType::kMic,
                      core::AssociationEngineType::kArx,
                      core::AssociationEngineType::kEnsemble),
    [](const ::testing::TestParamInfo<core::AssociationEngineType>& info) {
      return core::AssociationEngineName(info.param);
    });

// ----------------------------------------------- pair index exhaustively --

TEST(PairIndexPropertyTest, DenseAndInvertible) {
  std::vector<bool> seen(telemetry::kNumMetricPairs, false);
  for (int a = 0; a < telemetry::kNumMetrics; ++a) {
    for (int b = a + 1; b < telemetry::kNumMetrics; ++b) {
      const int index = telemetry::PairIndex(a, b);
      ASSERT_GE(index, 0);
      ASSERT_LT(index, telemetry::kNumMetricPairs);
      EXPECT_FALSE(seen[static_cast<size_t>(index)]);  // injective
      seen[static_cast<size_t>(index)] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);  // surjective
}

// -------------------------------------------- campaign thread invariance --

// A whole campaign - simulation fan-out, invariant mining, signature
// queries, scoring - is one deterministic function of the scenario. The
// rendered scoreboard must not depend on the worker count, and a repeated
// run must reproduce it byte for byte.
class CampaignThreadsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CampaignThreadsPropertyTest, ScoreboardBytesMatchSerialRun) {
  const Result<campaign::Scenario> scenario = campaign::ParseScenario(R"(
name = threads-property
workload = sort
fault = mem-hog
seed = 17
slaves = 2
normal-runs = 3
signature-runs = 1
test-runs = 2
signatures = mem-hog,cpu-hog,suspend
)");
  ASSERT_TRUE(scenario.ok()) << scenario.status().message();

  campaign::CampaignOptions serial;
  serial.threads = 1;
  const Result<campaign::CampaignResult> baseline =
      campaign::RunCampaign({scenario.value()}, serial);
  ASSERT_TRUE(baseline.ok()) << baseline.status().message();

  campaign::CampaignOptions options;
  options.threads = GetParam();
  const Result<campaign::CampaignResult> run =
      campaign::RunCampaign({scenario.value()}, options);
  ASSERT_TRUE(run.ok()) << run.status().message();

  EXPECT_EQ(campaign::RenderJson(baseline.value()),
            campaign::RenderJson(run.value()));
  EXPECT_EQ(campaign::RenderCsv(baseline.value()),
            campaign::RenderCsv(run.value()));
  EXPECT_EQ(campaign::RenderScenarioReport(baseline.value().scores[0]),
            campaign::RenderScenarioReport(run.value().scores[0]));
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, CampaignThreadsPropertyTest,
                         ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace invarnetx
