#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli/commands.h"
#include "obs/log.h"
#include "obs/span.h"

namespace invarnetx::cli {
namespace {

namespace fs = std::filesystem;

CommandLine Parse(std::vector<const char*> argv) {
  return ParseArgs(static_cast<int>(argv.size()), argv.data()).value();
}

// ------------------------------------------------------------- parsing ----

TEST(ParseArgsTest, SplitsOptionsAndPositionals) {
  const CommandLine args =
      Parse({"diagnose", "--store", "dir", "trace.csv", "--node", "ip"});
  EXPECT_EQ(args.command, "diagnose");
  EXPECT_EQ(args.Get("store", ""), "dir");
  EXPECT_EQ(args.Get("node", ""), "ip");
  EXPECT_EQ(args.Get("missing", "fallback"), "fallback");
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "trace.csv");
}

TEST(ParseArgsTest, BareOptionsParseAsBooleanFlags) {
  // Trailing `--flag`, and `--flag` followed by another option, both read
  // as "1" so commands can test them with Has().
  const CommandLine args =
      Parse({"campaign", "--update-golden", "--threads", "2", "--verbose"});
  EXPECT_EQ(args.Get("update-golden", ""), "1");
  EXPECT_EQ(args.Get("threads", ""), "2");
  EXPECT_TRUE(args.Has("verbose"));
  EXPECT_TRUE(args.positional.empty());
}

TEST(ParseArgsTest, RejectsEmpty) {
  EXPECT_FALSE(ParseArgs(0, nullptr).ok());
}

TEST(ParseArgsTest, AcceptsEqualsSpelling) {
  const CommandLine args =
      Parse({"diagnose", "--store=dir", "--log-level=debug", "trace.csv"});
  EXPECT_EQ(args.Get("store", ""), "dir");
  EXPECT_EQ(args.Get("log-level", ""), "debug");
  ASSERT_EQ(args.positional.size(), 1u);
  // An empty value after '=' is still a present option.
  const CommandLine empty = Parse({"diagnose", "--node="});
  EXPECT_TRUE(empty.Has("node"));
  EXPECT_EQ(empty.Get("node", "fallback"), "");
}

TEST(RunCommandTest, UnknownCommandShowsUsage) {
  std::string out;
  const Status status = RunCommand(Parse({"frobnicate"}), &out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(out.find("commands:"), std::string::npos);
}

TEST(RunCommandTest, RejectsBadLogLevel) {
  std::string out;
  const Status status =
      RunCommand(Parse({"info", "--log-level", "loud", "x.csv"}), &out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("loud"), std::string::npos);
}

// --------------------------------------------------------- full workflow --

class CliWorkflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "invarnetx_cli_test").string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(CliWorkflowTest, SimulateTrainDiagnose) {
  std::string out;
  // 1. Generate training traces.
  std::vector<std::string> traces;
  for (int i = 0; i < 6; ++i) {
    const std::string path = Path("normal" + std::to_string(i) + ".csv");
    ASSERT_TRUE(RunSimulate(Parse({"simulate", "--workload", "grep", "--seed",
                                   std::to_string(300 + i).c_str(), "--out",
                                   path.c_str()}),
                            &out)
                    .ok())
        << out;
    traces.push_back(path);
  }
  // 2. Train a store.
  const std::string store = Path("store");
  std::vector<const char*> train_argv = {"train", "--node", "10.0.0.2",
                                         "--out", store.c_str()};
  for (const std::string& t : traces) train_argv.push_back(t.c_str());
  ASSERT_TRUE(RunTrain(Parse(train_argv), &out).ok()) << out;
  EXPECT_TRUE(fs::exists(store + "/models.xml"));
  EXPECT_TRUE(fs::exists(store + "/invariants.xml"));

  // 3. Teach one signature.
  const std::string hog = Path("hog.csv");
  ASSERT_TRUE(RunSimulate(Parse({"simulate", "--workload", "grep", "--seed",
                                 "900", "--fault", "cpu-hog", "--out",
                                 hog.c_str()}),
                          &out)
                  .ok());
  ASSERT_TRUE(RunAddSignature(Parse({"add-signature", "--store",
                                     store.c_str(), "--problem", "cpu-hog",
                                     "--node", "10.0.0.2", hog.c_str()}),
                              &out)
                  .ok())
      << out;

  // 4. Diagnose a fresh incident.
  const std::string incident = Path("incident.csv");
  ASSERT_TRUE(RunSimulate(Parse({"simulate", "--workload", "grep", "--seed",
                                 "999", "--fault", "cpu-hog", "--out",
                                 incident.c_str()}),
                          &out)
                  .ok());
  out.clear();
  ASSERT_TRUE(RunDiagnose(Parse({"diagnose", "--store", store.c_str(),
                                 "--node", "10.0.0.2", incident.c_str()}),
                          &out)
                  .ok())
      << out;
  EXPECT_NE(out.find("ANOMALY"), std::string::npos) << out;
  EXPECT_NE(out.find("cpu-hog"), std::string::npos) << out;

  // 5. Info prints metadata.
  out.clear();
  ASSERT_TRUE(RunInfo(Parse({"info", incident.c_str()}), &out).ok());
  EXPECT_NE(out.find("grep"), std::string::npos);
  EXPECT_NE(out.find("fault cpu-hog"), std::string::npos);
}

TEST_F(CliWorkflowTest, SimulateJobsQueue) {
  std::string out;
  const std::string path = Path("seq.csv");
  ASSERT_TRUE(RunSimulate(Parse({"simulate", "--jobs", "grep,wordcount",
                                 "--seed", "5", "--out", path.c_str()}),
                          &out)
                  .ok())
      << out;
  out.clear();
  ASSERT_TRUE(RunInfo(Parse({"info", path.c_str()}), &out).ok());
  EXPECT_NE(out.find("job grep["), std::string::npos) << out;
  EXPECT_NE(out.find("job wordcount["), std::string::npos) << out;
  // Interactive jobs cannot queue.
  EXPECT_FALSE(RunSimulate(Parse({"simulate", "--jobs", "grep,tpcds",
                                  "--out", Path("bad.csv").c_str()}),
                           &out)
                   .ok());
}

TEST_F(CliWorkflowTest, SimulateValidatesInput) {
  std::string out;
  EXPECT_FALSE(RunSimulate(Parse({"simulate", "--workload", "bogus", "--out",
                                  Path("x.csv").c_str()}),
                           &out)
                   .ok());
  EXPECT_FALSE(RunSimulate(Parse({"simulate", "--workload", "grep", "--fault",
                                  "bogus", "--out", Path("x.csv").c_str()}),
                           &out)
                   .ok());
}

TEST_F(CliWorkflowTest, TrainValidatesOptions) {
  std::string out;
  EXPECT_FALSE(RunTrain(Parse({"train", "--out", Path("s").c_str()}), &out)
                   .ok());  // no --node
  EXPECT_FALSE(
      RunTrain(Parse({"train", "--node", "10.0.0.2", "--out",
                      Path("s").c_str()}),
               &out)
          .ok());  // no traces
  // Unknown node ip in an otherwise valid trace.
  const std::string trace = Path("t.csv");
  ASSERT_TRUE(RunSimulate(Parse({"simulate", "--workload", "grep", "--seed",
                                 "1", "--out", trace.c_str()}),
                          &out)
                  .ok());
  EXPECT_FALSE(RunTrain(Parse({"train", "--node", "1.2.3.4", "--out",
                               Path("s").c_str(), trace.c_str()}),
                        &out)
                   .ok());
}

TEST_F(CliWorkflowTest, SequenceTraceDiagnosedPerJobSpan) {
  std::string out;
  // Train a grep store.
  std::vector<std::string> traces;
  for (int i = 0; i < 6; ++i) {
    const std::string path = Path("g" + std::to_string(i) + ".csv");
    ASSERT_TRUE(RunSimulate(Parse({"simulate", "--workload", "grep", "--seed",
                                   std::to_string(500 + i).c_str(), "--out",
                                   path.c_str()}),
                            &out)
                    .ok());
    traces.push_back(path);
  }
  const std::string store = Path("store_seq");
  std::vector<const char*> train_argv = {"train", "--node", "10.0.0.2",
                                         "--out", store.c_str()};
  for (const std::string& t : traces) train_argv.push_back(t.c_str());
  ASSERT_TRUE(RunTrain(Parse(train_argv), &out).ok()) << out;

  // A two-job queue trace: diagnosis must go span by span, reporting the
  // grep span against the trained context and the wordcount span as
  // untrained.
  const std::string seq = Path("seq.csv");
  ASSERT_TRUE(RunSimulate(Parse({"simulate", "--jobs", "grep,wordcount",
                                 "--seed", "5", "--out", seq.c_str()}),
                          &out)
                  .ok());
  out.clear();
  ASSERT_TRUE(RunDiagnose(Parse({"diagnose", "--store", store.c_str(),
                                 seq.c_str()}),
                          &out)
                  .ok())
      << out;
  EXPECT_NE(out.find("== job 0 (grep"), std::string::npos) << out;
  EXPECT_NE(out.find("== job 1 (wordcount"), std::string::npos) << out;
  EXPECT_NE(out.find("context not trained"), std::string::npos) << out;
}

TEST_F(CliWorkflowTest, DiagnoseNeedsStore) {
  std::string out;
  EXPECT_FALSE(
      RunDiagnose(Parse({"diagnose", Path("none.csv").c_str()}), &out).ok());
}

// ---------------------------------------------------------- observability --

TEST_F(CliWorkflowTest, StatsDumpsTheMetricsRegistry) {
  std::string out;
  ASSERT_TRUE(RunCommand(Parse({"stats", "--workload", "grep", "--runs", "2"}),
                         &out)
                  .ok())
      << out;
  // The built-in self-exercise must light up the pipeline, cache, and
  // thread-pool instrumentation.
  EXPECT_NE(out.find("counter pipeline.train_calls"), std::string::npos) << out;
  EXPECT_NE(out.find("counter assoc_cache.hits"), std::string::npos);
  EXPECT_NE(out.find("counter threadpool.tasks_executed"), std::string::npos);
  EXPECT_NE(out.find("histogram span.diagnose"), std::string::npos);
  EXPECT_NE(out.find("# cost: "), std::string::npos);

  out.clear();
  ASSERT_TRUE(RunStats(Parse({"stats", "--workload", "grep", "--runs", "2",
                              "--format", "json"}),
                       &out)
                  .ok());
  EXPECT_TRUE(obs::ValidateJson(out).ok()) << out;
  EXPECT_NE(out.find("\"counters\""), std::string::npos);

  EXPECT_FALSE(
      RunStats(Parse({"stats", "--format", "xml"}), &out).ok());
  EXPECT_FALSE(
      RunStats(Parse({"stats", "--workload", "bogus"}), &out).ok());
}

TEST_F(CliWorkflowTest, TraceOutWritesValidChromeTrace) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Shared();
  recorder.SetEnabled(false);
  recorder.Clear();

  std::string out;
  const std::string trace_path = Path("cli_trace.json");
  ASSERT_TRUE(RunCommand(Parse({"stats", "--workload", "grep", "--runs", "2",
                                "--trace-out", trace_path.c_str()}),
                         &out)
                  .ok())
      << out;
  recorder.SetEnabled(false);
  recorder.Clear();
  EXPECT_NE(out.find("wrote trace events to"), std::string::npos) << out;

  std::ifstream file(trace_path);
  ASSERT_TRUE(file.good());
  std::ostringstream buffer;
  buffer << file.rdbuf();
  size_t num_events = 0;
  ASSERT_TRUE(obs::ValidateChromeTrace(buffer.str(), &num_events).ok())
      << buffer.str();
  EXPECT_GT(num_events, 0u);
  // The end-to-end self-exercise covers training, detection, diagnosis and
  // the association matrix, so all four stage spans must appear.
  for (const char* stage :
       {"train_context", "mine_invariants", "detect", "diagnose",
        "assoc_matrix"}) {
    EXPECT_NE(buffer.str().find(stage), std::string::npos) << stage;
  }
}

}  // namespace
}  // namespace invarnetx::cli
