#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "xmlstore/stores.h"
#include "xmlstore/xml.h"

namespace invarnetx::xmlstore {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// -------------------------------------------------------------- XmlNode --

TEST(XmlNodeTest, AttrAndChildLookup) {
  XmlNode node;
  node.name = "root";
  node.SetAttr("k", "v");
  node.AddChild("a").SetAttr("x", "1");
  node.AddChild("b");
  node.AddChild("a").SetAttr("x", "2");
  EXPECT_EQ(node.Attr("k"), "v");
  EXPECT_EQ(node.Attr("missing"), "");
  ASSERT_NE(node.Child("a"), nullptr);
  EXPECT_EQ(node.Child("a")->Attr("x"), "1");
  EXPECT_EQ(node.Child("missing"), nullptr);
  EXPECT_EQ(node.Children("a").size(), 2u);
}

TEST(XmlNodeTest, SetAttrOverwrites) {
  XmlNode node;
  node.SetAttr("k", "1");
  node.SetAttr("k", "2");
  EXPECT_EQ(node.Attr("k"), "2");
  EXPECT_EQ(node.attributes.size(), 1u);
}

// -------------------------------------------------------- write + parse --

TEST(XmlRoundTripTest, SimpleDocument) {
  XmlNode root;
  root.name = "doc";
  root.SetAttr("version", "1");
  XmlNode& child = root.AddChild("item");
  child.SetAttr("name", "alpha");
  child.text = "hello world";
  root.AddChild("empty");

  Result<XmlNode> parsed = ParseXml(WriteXml(root));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().name, "doc");
  EXPECT_EQ(parsed.value().Attr("version"), "1");
  ASSERT_NE(parsed.value().Child("item"), nullptr);
  EXPECT_EQ(parsed.value().Child("item")->text, "hello world");
  EXPECT_NE(parsed.value().Child("empty"), nullptr);
}

TEST(XmlRoundTripTest, EscapedCharacters) {
  XmlNode root;
  root.name = "doc";
  root.SetAttr("attr", "a<b>&\"'c");
  root.text = "1 < 2 && \"q\"";
  Result<XmlNode> parsed = ParseXml(WriteXml(root));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Attr("attr"), "a<b>&\"'c");
  EXPECT_EQ(parsed.value().text, "1 < 2 && \"q\"");
}

TEST(XmlRoundTripTest, DeepNesting) {
  XmlNode root;
  root.name = "l0";
  XmlNode* cursor = &root;
  for (int i = 1; i < 10; ++i) {
    cursor = &cursor->AddChild("l" + std::to_string(i));
  }
  cursor->text = "deep";
  Result<XmlNode> parsed = ParseXml(WriteXml(root));
  ASSERT_TRUE(parsed.ok());
  const XmlNode* walker = &parsed.value();
  for (int i = 1; i < 10; ++i) {
    walker = walker->Child("l" + std::to_string(i));
    ASSERT_NE(walker, nullptr);
  }
  EXPECT_EQ(walker->text, "deep");
}

TEST(XmlParseTest, AcceptsDeclarationAndComments) {
  const std::string doc =
      "<?xml version=\"1.0\"?>\n<!-- header -->\n"
      "<root><!-- inner --><a k='single quotes'/></root>\n<!-- trailing -->";
  Result<XmlNode> parsed = ParseXml(doc);
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed.value().Child("a"), nullptr);
  EXPECT_EQ(parsed.value().Child("a")->Attr("k"), "single quotes");
}

TEST(XmlParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());                     // unterminated
  EXPECT_FALSE(ParseXml("<a></b>").ok());                 // mismatched
  EXPECT_FALSE(ParseXml("<a x=1></a>").ok());             // unquoted attr
  EXPECT_FALSE(ParseXml("<a>&bogus;</a>").ok());          // unknown entity
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());                // two roots
  EXPECT_FALSE(ParseXml("just text").ok());
}

TEST(XmlFileTest, WriteAndReadBack) {
  const std::string path = TempPath("invarnetx_xml_test.xml");
  XmlNode root;
  root.name = "doc";
  root.AddChild("x").text = "42";
  ASSERT_TRUE(WriteXmlFile(path, root).ok());
  Result<XmlNode> parsed = ReadXmlFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Child("x")->text, "42");
  std::filesystem::remove(path);
}

TEST(XmlFileTest, MissingFileIsIoError) {
  Result<XmlNode> parsed = ReadXmlFile("/nonexistent/dir/file.xml");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
}

// ----------------------------------------------------------------- stores --

TEST(StoresTest, ArimaModelRoundTrip) {
  const std::string path = TempPath("invarnetx_models_test.xml");
  ArimaModelRecord rec;
  rec.p = 2;
  rec.d = 1;
  rec.q = 1;
  rec.ip = "10.0.0.2";
  rec.workload = "wordcount";
  rec.ar = {0.25, -0.125};
  rec.ma = {0.5};
  rec.intercept = 0.001953125;
  rec.sigma2 = 0.0625;
  rec.residual_min = 0.0001;
  rec.residual_max = 0.31;
  rec.residual_p95 = 0.12;
  ASSERT_TRUE(SaveArimaModels(path, {rec}).ok());
  Result<std::vector<ArimaModelRecord>> loaded = LoadArimaModels(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  const ArimaModelRecord& got = loaded.value()[0];
  EXPECT_EQ(got.p, 2);
  EXPECT_EQ(got.d, 1);
  EXPECT_EQ(got.q, 1);
  EXPECT_EQ(got.ip, "10.0.0.2");
  EXPECT_EQ(got.workload, "wordcount");
  EXPECT_EQ(got.ar, rec.ar);          // exact: %.17g round-trips doubles
  EXPECT_EQ(got.ma, rec.ma);
  EXPECT_DOUBLE_EQ(got.intercept, rec.intercept);
  EXPECT_DOUBLE_EQ(got.sigma2, rec.sigma2);
  EXPECT_DOUBLE_EQ(got.residual_max, rec.residual_max);
  std::filesystem::remove(path);
}

TEST(StoresTest, ArimaModelRejectsCoefficientMismatch) {
  const std::string path = TempPath("invarnetx_models_bad.xml");
  ArimaModelRecord rec;
  rec.p = 2;  // but only one AR coefficient below
  rec.ar = {0.5};
  ASSERT_TRUE(SaveArimaModels(path, {rec}).ok());
  EXPECT_FALSE(LoadArimaModels(path).ok());
  std::filesystem::remove(path);
}

TEST(StoresTest, InvariantSetRoundTrip) {
  const std::string path = TempPath("invarnetx_invariants_test.xml");
  InvariantSetRecord rec;
  rec.ip = "10.0.0.3";
  rec.workload = "sort";
  rec.num_metrics = 26;
  rec.entries = {{0, 5, 0.875}, {3, 17, 0.25}};
  ASSERT_TRUE(SaveInvariantSets(path, {rec}).ok());
  Result<std::vector<InvariantSetRecord>> loaded = LoadInvariantSets(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].num_metrics, 26);
  ASSERT_EQ(loaded.value()[0].entries.size(), 2u);
  EXPECT_EQ(loaded.value()[0].entries[1].metric_a, 3);
  EXPECT_EQ(loaded.value()[0].entries[1].metric_b, 17);
  EXPECT_DOUBLE_EQ(loaded.value()[0].entries[0].value, 0.875);
  std::filesystem::remove(path);
}

TEST(StoresTest, SignatureRoundTrip) {
  const std::string path = TempPath("invarnetx_sigs_test.xml");
  SignatureRecord rec;
  rec.problem = "mem-hog";
  rec.ip = "10.0.0.2";
  rec.workload = "wordcount";
  rec.bits = {1, 0, 1, 1, 0};
  ASSERT_TRUE(SaveSignatures(path, {rec}).ok());
  Result<std::vector<SignatureRecord>> loaded = LoadSignatures(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].problem, "mem-hog");
  EXPECT_EQ(loaded.value()[0].bits, rec.bits);
  std::filesystem::remove(path);
}

TEST(StoresTest, EmptyListsRoundTrip) {
  const std::string path = TempPath("invarnetx_empty_test.xml");
  ASSERT_TRUE(SaveSignatures(path, {}).ok());
  Result<std::vector<SignatureRecord>> loaded = LoadSignatures(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
  std::filesystem::remove(path);
}

TEST(StoresTest, WrongRootIsRejected) {
  const std::string path = TempPath("invarnetx_wrongroot_test.xml");
  ASSERT_TRUE(SaveSignatures(path, {}).ok());
  EXPECT_FALSE(LoadArimaModels(path).ok());
  EXPECT_FALSE(LoadInvariantSets(path).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace invarnetx::xmlstore
