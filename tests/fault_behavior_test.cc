// End-to-end behavioural contracts for every fault: each fault's documented
// manifestation must be visible in the observable metrics of a full
// simulated run (engine + telemetry, not just the driver fields).

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "telemetry/runner.h"

namespace invarnetx {
namespace {

using telemetry::RunTrace;
using workload::WorkloadType;

// Simulates a WordCount run with the fault (unless kOverload, which runs
// under TPC-DS).
RunTrace FaultRun(faults::FaultType fault, uint64_t seed = 77) {
  telemetry::RunConfig config;
  config.workload = fault == faults::FaultType::kOverload
                        ? WorkloadType::kTpcDs
                        : WorkloadType::kWordCount;
  config.seed = seed;
  config.fault =
      telemetry::FaultRequest{fault, telemetry::DefaultFaultWindow(fault)};
  return telemetry::SimulateRun(config).value();
}

RunTrace NormalRun(WorkloadType type = WorkloadType::kWordCount,
                   uint64_t seed = 77) {
  telemetry::RunConfig config;
  config.workload = type;
  config.seed = seed;
  return telemetry::SimulateRun(config).value();
}

// Mean of a metric over the fault window on the given node.
double WindowMean(const RunTrace& trace, size_t node, int metric) {
  const faults::FaultWindow& window = trace.fault->window;
  double acc = 0.0;
  int count = 0;
  for (int t = window.start_tick;
       t < std::min(window.end_tick(), trace.ticks); ++t) {
    acc += trace.nodes[node].metrics[static_cast<size_t>(metric)]
                                    [static_cast<size_t>(t)];
    ++count;
  }
  return acc / count;
}

double NormalMean(const RunTrace& normal, size_t node, int metric,
                  const faults::FaultWindow& window) {
  double acc = 0.0;
  int count = 0;
  for (int t = window.start_tick;
       t < std::min(window.end_tick(), normal.ticks); ++t) {
    acc += normal.nodes[node].metrics[static_cast<size_t>(metric)]
                                     [static_cast<size_t>(t)];
    ++count;
  }
  return acc / count;
}

TEST(FaultBehaviorTest, CpuHogRaisesCpuAndCpi) {
  const RunTrace faulty = FaultRun(faults::FaultType::kCpuHog);
  const RunTrace normal = NormalRun();
  EXPECT_GT(WindowMean(faulty, 1, telemetry::kCpuUserPct),
            NormalMean(normal, 1, telemetry::kCpuUserPct,
                       faulty.fault->window) + 15.0);
  // CPI elevated on the victim during the window.
  double faulty_cpi = 0.0, normal_cpi = 0.0;
  for (int t = 8; t < 38; ++t) {
    faulty_cpi += faulty.nodes[1].cpi[static_cast<size_t>(t)];
    normal_cpi += normal.nodes[1].cpi[static_cast<size_t>(t)];
  }
  EXPECT_GT(faulty_cpi, normal_cpi * 1.15);
}

TEST(FaultBehaviorTest, MemHogDrivesSwapAndFaults) {
  const RunTrace faulty = FaultRun(faults::FaultType::kMemHog);
  const RunTrace normal = NormalRun();
  EXPECT_GT(WindowMean(faulty, 1, telemetry::kSwapUsedMb), 100.0);
  EXPECT_GT(WindowMean(faulty, 1, telemetry::kPageFaultsPerSec),
            NormalMean(normal, 1, telemetry::kPageFaultsPerSec,
                       faulty.fault->window) * 1.5);
}

TEST(FaultBehaviorTest, DiskHogSaturatesTheDevice) {
  const RunTrace faulty = FaultRun(faults::FaultType::kDiskHog);
  EXPECT_GT(WindowMean(faulty, 1, telemetry::kDiskUtilPct), 85.0);
  EXPECT_GT(WindowMean(faulty, 1, telemetry::kCpuIowaitPct), 10.0);
}

TEST(FaultBehaviorTest, NetDropCausesRetransmissionStorm) {
  const RunTrace faulty = FaultRun(faults::FaultType::kNetDrop);
  const RunTrace normal = NormalRun();
  EXPECT_GT(WindowMean(faulty, 1, telemetry::kTcpRetransPerSec),
            NormalMean(normal, 1, telemetry::kTcpRetransPerSec,
                       faulty.fault->window) + 10.0);
}

TEST(FaultBehaviorTest, NetDelayCrushesThroughputWithoutRetransStorm) {
  const RunTrace delay = FaultRun(faults::FaultType::kNetDelay);
  const RunTrace drop = FaultRun(faults::FaultType::kNetDrop);
  const RunTrace normal = NormalRun();
  EXPECT_LT(WindowMean(delay, 1, telemetry::kNetRxKbps),
            NormalMean(normal, 1, telemetry::kNetRxKbps,
                       delay.fault->window) * 0.7);
  EXPECT_LT(WindowMean(delay, 1, telemetry::kTcpRetransPerSec),
            WindowMean(drop, 1, telemetry::kTcpRetransPerSec) * 0.7);
}

TEST(FaultBehaviorTest, BlockCorruptionAddsReReadsAndReplication) {
  const RunTrace faulty = FaultRun(faults::FaultType::kBlockCorruption);
  const RunTrace normal = NormalRun();
  EXPECT_GT(WindowMean(faulty, 1, telemetry::kDiskReadKbps),
            NormalMean(normal, 1, telemetry::kDiskReadKbps,
                       faulty.fault->window) * 1.2);
  EXPECT_GT(WindowMean(faulty, 1, telemetry::kNetTxKbps),
            NormalMean(normal, 1, telemetry::kNetTxKbps,
                       faulty.fault->window) * 1.2);
}

TEST(FaultBehaviorTest, MisconfigMultipliesTaskChurn) {
  const RunTrace faulty = FaultRun(faults::FaultType::kMisconfig);
  const RunTrace normal = NormalRun();
  // Cluster-wide: check a non-victim node too.
  for (size_t node : {size_t{1}, size_t{3}}) {
    EXPECT_GT(WindowMean(faulty, node, telemetry::kCtxSwitchesPerSec),
              NormalMean(normal, node, telemetry::kCtxSwitchesPerSec,
                         faulty.fault->window) * 1.3)
        << "node " << node;
  }
}

TEST(FaultBehaviorTest, OverloadInflatesEverything) {
  const RunTrace faulty = FaultRun(faults::FaultType::kOverload);
  const RunTrace normal = NormalRun(WorkloadType::kTpcDs);
  EXPECT_GT(WindowMean(faulty, 1, telemetry::kCpuUserPct),
            NormalMean(normal, 1, telemetry::kCpuUserPct,
                       faulty.fault->window) * 1.3);
  EXPECT_GT(WindowMean(faulty, 1, telemetry::kDiskUtilPct),
            NormalMean(normal, 1, telemetry::kDiskUtilPct,
                       faulty.fault->window) * 1.2);
}

TEST(FaultBehaviorTest, SuspendFreezesActivityKeepsMemory) {
  const RunTrace faulty = FaultRun(faults::FaultType::kSuspend);
  const RunTrace normal = NormalRun();
  EXPECT_LT(WindowMean(faulty, 1, telemetry::kCpuUserPct),
            NormalMean(normal, 1, telemetry::kCpuUserPct,
                       faulty.fault->window) * 0.3);
  EXPECT_GT(WindowMean(faulty, 1, telemetry::kMemUsedMb),
            NormalMean(normal, 1, telemetry::kMemUsedMb,
                       faulty.fault->window) * 0.7);
}

TEST(FaultBehaviorTest, RpcHangQuietsNetworkAndStallsProgress) {
  const RunTrace faulty = FaultRun(faults::FaultType::kRpcHang);
  const RunTrace normal = NormalRun();
  EXPECT_LT(WindowMean(faulty, 1, telemetry::kNetRxKbps),
            NormalMean(normal, 1, telemetry::kNetRxKbps,
                       faulty.fault->window) * 0.75);
  EXPECT_GT(faulty.duration_seconds, normal.duration_seconds * 1.1);
}

TEST(FaultBehaviorTest, ThreadLeakGrowsProcThreadsMonotonically) {
  const RunTrace faulty = FaultRun(faults::FaultType::kThreadLeak);
  const auto& threads = faulty.nodes[1].metrics[telemetry::kProcThreads];
  const faults::FaultWindow& window = faulty.fault->window;
  const double early = threads[static_cast<size_t>(window.start_tick + 3)];
  const double late = threads[static_cast<size_t>(
      std::min(window.end_tick() - 1, faulty.ticks - 1))];
  EXPECT_GT(late, early + 500.0);
}

TEST(FaultBehaviorTest, NpeRestartChurnsProcesses) {
  const RunTrace faulty = FaultRun(faults::FaultType::kNpeRestart);
  const RunTrace normal = NormalRun();
  EXPECT_GT(WindowMean(faulty, 1, telemetry::kProcsRunning),
            NormalMean(normal, 1, telemetry::kProcsRunning,
                       faulty.fault->window) + 1.0);
}

TEST(FaultBehaviorTest, LockRaceStretchesTheRun) {
  const RunTrace faulty = FaultRun(faults::FaultType::kLockRace);
  const RunTrace normal = NormalRun();
  EXPECT_GE(faulty.duration_seconds, normal.duration_seconds);
}

TEST(FaultBehaviorTest, CommInterferenceJittersNetwork) {
  // Mean tick-to-tick relative change of rx throughput inside the window:
  // the per-tick jitter multiplies successive ticks by different factors,
  // which shows up as choppiness (phase ramps change levels only slowly,
  // so the normal run stays smooth by comparison).
  const RunTrace faulty = FaultRun(faults::FaultType::kCommInterference);
  const RunTrace normal = NormalRun();
  auto choppiness = [](const RunTrace& trace,
                       const faults::FaultWindow& window) {
    double acc = 0.0;
    int count = 0;
    const auto& rx = trace.nodes[1].metrics[telemetry::kNetRxKbps];
    for (int t = window.start_tick + 1;
         t < std::min(window.end_tick(), trace.ticks); ++t) {
      const double prev = rx[static_cast<size_t>(t - 1)];
      if (prev <= 0.0) continue;
      acc += std::fabs(rx[static_cast<size_t>(t)] - prev) / prev;
      ++count;
    }
    return count > 0 ? acc / count : 0.0;
  };
  EXPECT_GT(choppiness(faulty, faulty.fault->window),
            choppiness(normal, faulty.fault->window) * 1.5);
}

TEST(FaultBehaviorTest, BlockReceiverSuppressesWrites) {
  const RunTrace faulty = FaultRun(faults::FaultType::kBlockReceiverException);
  const RunTrace normal = NormalRun();
  EXPECT_LT(WindowMean(faulty, 1, telemetry::kDiskWriteKbps),
            NormalMean(normal, 1, telemetry::kDiskWriteKbps,
                       faulty.fault->window) * 0.7);
}

}  // namespace
}  // namespace invarnetx
