#include <gtest/gtest.h>

#include "cluster/node.h"
#include "faults/fault.h"

namespace invarnetx::faults {
namespace {

cluster::Cluster Testbed() { return cluster::Cluster::MakeTestbed(); }

// Applies one active tick of a fault to a fresh testbed and returns it.
cluster::Cluster ApplyOnce(FaultType type, uint64_t seed = 5,
                           size_t target = 1) {
  cluster::Cluster testbed = Testbed();
  Rng rng(seed);
  FaultWindow window;
  window.start_tick = 0;
  window.duration_ticks = 10;
  window.target_node = target;
  auto fault = MakeFault(type, window, &rng);
  fault->Apply(0, &testbed, &rng);
  return testbed;
}

TEST(FaultCatalogTest, FifteenFaults) {
  EXPECT_EQ(AllFaults().size(), 15u);
}

TEST(FaultCatalogTest, NamesRoundTrip) {
  for (FaultType type : AllFaults()) {
    Result<FaultType> parsed = FaultFromName(FaultName(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), type);
  }
  EXPECT_FALSE(FaultFromName("no-such-fault").ok());
}

TEST(FaultCatalogTest, OverloadOnlyForInteractive) {
  EXPECT_FALSE(AppliesTo(FaultType::kOverload,
                         workload::WorkloadType::kWordCount));
  EXPECT_TRUE(AppliesTo(FaultType::kOverload, workload::WorkloadType::kTpcDs));
  EXPECT_TRUE(AppliesTo(FaultType::kCpuHog,
                        workload::WorkloadType::kWordCount));
}

TEST(FaultWindowTest, ActiveRange) {
  FaultWindow window;
  window.start_tick = 5;
  window.duration_ticks = 3;
  EXPECT_FALSE(window.Active(4));
  EXPECT_TRUE(window.Active(5));
  EXPECT_TRUE(window.Active(7));
  EXPECT_FALSE(window.Active(8));
  EXPECT_EQ(window.end_tick(), 8);
}

TEST(FaultWindowTest, InactiveTicksHaveNoEffect) {
  cluster::Cluster testbed = Testbed();
  Rng rng(1);
  FaultWindow window;
  window.start_tick = 5;
  window.duration_ticks = 3;
  auto fault = MakeFault(FaultType::kCpuHog, window, &rng);
  fault->Apply(0, &testbed, &rng);
  EXPECT_DOUBLE_EQ(testbed.node(1).drivers.cpu_extra, 0.0);
  fault->Apply(9, &testbed, &rng);
  EXPECT_DOUBLE_EQ(testbed.node(1).drivers.cpu_extra, 0.0);
  fault->Apply(6, &testbed, &rng);
  EXPECT_GT(testbed.node(1).drivers.cpu_extra, 0.2);
}

TEST(FaultEffectTest, CpuHogTargetsCpuAndCache) {
  cluster::Cluster hit = ApplyOnce(FaultType::kCpuHog);
  EXPECT_GT(hit.node(1).drivers.cpu_extra, 0.3);
  EXPECT_GT(hit.node(1).drivers.cache_pressure, 0.1);
  EXPECT_DOUBLE_EQ(hit.node(2).drivers.cpu_extra, 0.0);  // node-local
}

TEST(FaultEffectTest, MemHogAllocatesMemory) {
  cluster::Cluster hit = ApplyOnce(FaultType::kMemHog);
  EXPECT_GT(hit.node(1).drivers.mem_extra_mb, 6000.0);
}

TEST(FaultEffectTest, DiskHogGeneratesIo) {
  cluster::Cluster hit = ApplyOnce(FaultType::kDiskHog);
  EXPECT_GT(hit.node(1).drivers.io_extra, 0.4);
}

TEST(FaultEffectTest, NetFaultsLeakClusterWide) {
  cluster::Cluster drop = ApplyOnce(FaultType::kNetDrop, 5, 0);
  EXPECT_GT(drop.node(0).drivers.pkt_loss, 0.0);
  EXPECT_GT(drop.node(2).drivers.pkt_loss, 0.0);  // shared switch echo
  EXPECT_LT(drop.node(2).drivers.pkt_loss, drop.node(0).drivers.pkt_loss);

  cluster::Cluster delay = ApplyOnce(FaultType::kNetDelay, 5, 0);
  EXPECT_GT(delay.node(0).drivers.net_delay_ms, 100.0);
  EXPECT_GT(delay.node(3).drivers.net_delay_ms, 100.0);
}

TEST(FaultEffectTest, SuspendSetsFlag) {
  cluster::Cluster hit = ApplyOnce(FaultType::kSuspend);
  EXPECT_TRUE(hit.node(1).drivers.suspended);
  EXPECT_FALSE(hit.node(2).drivers.suspended);
}

TEST(FaultEffectTest, MisconfigIsClusterWideAndDeterministic) {
  cluster::Cluster testbed = Testbed();
  // Give slaves some churn for the multiplier to act on.
  for (size_t i = 1; i < testbed.size(); ++i) {
    testbed.node(i).drivers.task_churn = 0.5;
  }
  Rng rng(5);
  FaultWindow window;
  window.duration_ticks = 10;
  auto fault = MakeFault(FaultType::kMisconfig, window, &rng);
  fault->Apply(0, &testbed, &rng);
  for (size_t i = 1; i < testbed.size(); ++i) {
    EXPECT_GT(testbed.node(i).drivers.task_churn, 1.5) << "node " << i;
    EXPECT_LT(testbed.node(i).drivers.progress_scale, 0.95);
  }
}

TEST(FaultEffectTest, RpcHangBacklogAccumulates) {
  cluster::Cluster testbed = Testbed();
  Rng rng(6);
  FaultWindow window;
  window.duration_ticks = 20;
  auto fault = MakeFault(FaultType::kRpcHang, window, &rng);
  testbed.node(1).drivers.rpc_rate = 0.5;
  fault->Apply(0, &testbed, &rng);
  const double first = testbed.node(1).drivers.rpc_backlog;
  testbed.node(1).drivers.rpc_backlog = 0.0;  // engine resets each tick
  testbed.node(1).drivers.rpc_rate = 0.5;
  fault->Apply(1, &testbed, &rng);
  EXPECT_GT(testbed.node(1).drivers.rpc_backlog, first);
}

TEST(FaultEffectTest, ThreadLeakGrows) {
  cluster::Cluster testbed = Testbed();
  Rng rng(7);
  FaultWindow window;
  window.duration_ticks = 40;
  auto fault = MakeFault(FaultType::kThreadLeak, window, &rng);
  fault->Apply(0, &testbed, &rng);
  const double early = testbed.node(1).drivers.extra_threads;
  for (int t = 1; t < 20; ++t) fault->Apply(t, &testbed, &rng);
  EXPECT_GT(testbed.node(1).drivers.extra_threads, early * 5.0);
  // and the leak saturates at its cap
  for (int t = 20; t < 40; ++t) fault->Apply(t, &testbed, &rng);
  EXPECT_LE(testbed.node(1).drivers.extra_threads, 4000.0);
}

TEST(FaultEffectTest, LockRaceIsNondeterministicAcrossRuns) {
  // Two Lock-R injectors built from different streams must perturb
  // different metric-noise slots (with overwhelming probability).
  auto slots = [](uint64_t seed) {
    cluster::Cluster testbed = Testbed();
    Rng rng(seed);
    FaultWindow window;
    window.duration_ticks = 10;
    auto fault = MakeFault(FaultType::kLockRace, window, &rng);
    // Apply several ticks to catch the flickering activation.
    for (int t = 0; t < 10; ++t) fault->Apply(t, &testbed, &rng);
    std::vector<size_t> out;
    for (size_t i = 0; i < cluster::kMetricNoiseSlots; ++i) {
      if (testbed.node(1).drivers.metric_noise[i] > 0.0) out.push_back(i);
    }
    return out;
  };
  const std::vector<size_t> a = slots(100);
  const std::vector<size_t> b = slots(200);
  EXPECT_FALSE(a.empty());
  EXPECT_FALSE(b.empty());
  EXPECT_NE(a, b);
}

TEST(FaultEffectTest, BlockReceiverBreaksWritePath) {
  cluster::Cluster testbed = Testbed();
  testbed.node(1).drivers.io_write = 0.6;
  Rng rng(8);
  FaultWindow window;
  window.duration_ticks = 10;
  auto fault = MakeFault(FaultType::kBlockReceiverException, window, &rng);
  fault->Apply(0, &testbed, &rng);
  EXPECT_LT(testbed.node(1).drivers.io_write, 0.3);
  EXPECT_GT(testbed.node(1).drivers.net_in, 0.1);
}

TEST(FaultEffectTest, CpuUtilNoiseLeavesCacheAlone) {
  // The Fig. 2 disturbance adds utilization but no cache pressure or
  // progress penalty, so CPI stays flat.
  cluster::Cluster hit = ApplyOnce(FaultType::kCpuUtilNoise);
  EXPECT_GT(hit.node(1).drivers.cpu_extra, 0.1);
  EXPECT_LT(hit.node(1).drivers.cpu_extra, 0.45);
  EXPECT_DOUBLE_EQ(hit.node(1).drivers.cache_pressure, 0.0);
  EXPECT_DOUBLE_EQ(hit.node(1).drivers.progress_scale, 1.0);
}

TEST(FaultEffectTest, MagnitudeVariesAcrossRuns) {
  // Same fault type, different injector streams: severities differ.
  const double a = ApplyOnce(FaultType::kMemHog, 1).node(1).drivers.mem_extra_mb;
  const double b = ApplyOnce(FaultType::kMemHog, 2).node(1).drivers.mem_extra_mb;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace invarnetx::faults
