#include "causal/ranking.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "causal/graph.h"
#include "gtest/gtest.h"
#include "telemetry/metrics.h"

namespace invarnetx::causal {
namespace {

namespace tm = invarnetx::telemetry;

// One invariant to mine: the pair, its association score, whether the
// diagnosed run broke it, and by how much.
struct Edge {
  int a = 0;
  int b = 0;
  double weight = 1.0;
  bool broken = false;
  double deviation = 0.0;
};

// Expands a compact edge list into the flat pipeline layout BuildInvariantGraph
// consumes: present/values per metric pair, violations/deviations per invariant
// in ascending pair-index order.
InvariantGraph MakeGraph(const std::vector<Edge>& spec) {
  std::vector<uint8_t> present(tm::kNumMetricPairs, 0);
  std::vector<double> values(tm::kNumMetricPairs, 0.0);
  std::map<int, const Edge*> by_pair;
  for (const Edge& e : spec) {
    const int pair = tm::PairIndex(std::min(e.a, e.b), std::max(e.a, e.b));
    present[pair] = 1;
    values[pair] = e.weight;
    by_pair[pair] = &e;
  }
  std::vector<uint8_t> violations;
  std::vector<double> deviations;
  for (const auto& [pair, edge] : by_pair) {
    violations.push_back(edge->broken ? 1 : 0);
    deviations.push_back(edge->broken ? edge->deviation : 0.0);
  }
  Result<InvariantGraph> graph =
      BuildInvariantGraph(present, values, violations, deviations);
  EXPECT_TRUE(graph.ok()) << graph.status().message();
  return graph.ok() ? std::move(graph).value() : InvariantGraph{};
}

int RankOf(const std::vector<RankedSuspect>& ranking, int metric) {
  for (size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i].metric == metric) return static_cast<int>(i) + 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Graph-builder edge cases.
// ---------------------------------------------------------------------------

TEST(CausalGraphTest, EmptyMatrixYieldsNoEdgesAndEmptyRanking) {
  std::vector<uint8_t> present(tm::kNumMetricPairs, 0);
  std::vector<double> values(tm::kNumMetricPairs, 0.0);
  Result<InvariantGraph> graph = BuildInvariantGraph(present, values, {}, {});
  ASSERT_TRUE(graph.ok()) << graph.status().message();
  EXPECT_EQ(graph.value().num_edges(), 0);
  EXPECT_EQ(graph.value().num_broken(), 0);
  for (const auto& incident : graph.value().incident) {
    EXPECT_TRUE(incident.empty());
  }
  EXPECT_TRUE(RankSuspects(graph.value()).empty());
}

TEST(CausalGraphTest, RejectsSizeMismatches) {
  std::vector<uint8_t> present(tm::kNumMetricPairs, 0);
  std::vector<double> values(tm::kNumMetricPairs, 0.0);
  present[0] = 1;

  // Matrix vectors must cover every metric pair.
  EXPECT_FALSE(BuildInvariantGraph({1, 0}, {0.5, 0.0}, {1}, {}).ok());
  EXPECT_FALSE(
      BuildInvariantGraph(present, {0.5}, {1}, {}).ok());
  // One violation flag per invariant - not per pair, not empty.
  EXPECT_FALSE(BuildInvariantGraph(present, values, {}, {}).ok());
  EXPECT_FALSE(BuildInvariantGraph(present, values, {1, 0}, {}).ok());
  // Deviations, when given, must match the violations.
  EXPECT_FALSE(BuildInvariantGraph(present, values, {1}, {0.5, 0.1}).ok());
}

TEST(CausalGraphTest, MissingDeviationsDefaultToOne) {
  InvariantGraph graph;
  {
    std::vector<uint8_t> present(tm::kNumMetricPairs, 0);
    std::vector<double> values(tm::kNumMetricPairs, 0.0);
    const int pair = tm::PairIndex(2, 7);
    present[pair] = 1;
    values[pair] = 0.8;
    Result<InvariantGraph> built =
        BuildInvariantGraph(present, values, {1}, /*deviations=*/{});
    ASSERT_TRUE(built.ok()) << built.status().message();
    graph = std::move(built).value();
  }
  ASSERT_EQ(graph.num_edges(), 1);
  EXPECT_TRUE(graph.edges[0].broken);
  EXPECT_EQ(graph.edges[0].deviation, 1.0);
}

TEST(CausalGraphTest, SingleBrokenEdgeSplitsMassBetweenEndpoints) {
  InvariantGraph graph = MakeGraph({{3, 9, 0.9, true, 0.4}});
  ASSERT_EQ(graph.num_edges(), 1);
  EXPECT_EQ(graph.num_broken(), 1);
  std::vector<RankedSuspect> ranking = RankSuspects(graph);
  ASSERT_EQ(ranking.size(), 2u);
  // A lone broken edge is symmetric: both endpoints carry half the blame,
  // and the tie breaks toward the lower metric id.
  EXPECT_EQ(ranking[0].metric, 3);
  EXPECT_EQ(ranking[1].metric, 9);
  EXPECT_DOUBLE_EQ(ranking[0].score, ranking[1].score);
  EXPECT_NEAR(ranking[0].score + ranking[1].score, 1.0, 1e-12);
}

TEST(CausalGraphTest, DegenerateZeroWeightSliceRanksUniformlyWithoutNan) {
  // An all-constant training slice can mine invariants whose stored score is
  // 0.0; breaking them must not divide by zero or produce NaN.
  InvariantGraph graph = MakeGraph({
      {0, 1, 0.0, true, 0.0},
      {2, 3, 0.0, true, 0.0},
  });
  std::vector<RankedSuspect> ranking = RankSuspects(graph);
  ASSERT_EQ(ranking.size(), 4u);
  double total = 0.0;
  for (const RankedSuspect& s : ranking) {
    EXPECT_TRUE(std::isfinite(s.score));
    EXPECT_GT(s.score, 0.0);
    total += s.score;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Fully symmetric problem: everyone is equally suspicious.
  EXPECT_DOUBLE_EQ(ranking.front().score, ranking.back().score);
}

TEST(CausalGraphTest, DisconnectedComponentsBothRetainMass) {
  // Two broken components that share no metric: a decisive CPU pair and a
  // mild network pair. Mass must stay split across components (no component
  // starves), with the harder-broken one ahead.
  InvariantGraph graph = MakeGraph({
      {0, 1, 0.9, true, 0.8},    // component A
      {20, 21, 0.9, true, 0.1},  // component B
      {10, 11, 0.9, false, 0.0},  // intact edge elsewhere - must not rank
  });
  std::vector<RankedSuspect> ranking = RankSuspects(graph, {.top_k = 0});
  ASSERT_EQ(ranking.size(), 4u);
  EXPECT_GT(RankOf(ranking, 0), 0);
  EXPECT_GT(RankOf(ranking, 20), 0);
  EXPECT_EQ(RankOf(ranking, 10), 0);
  EXPECT_EQ(RankOf(ranking, 11), 0);
  EXPECT_LT(RankOf(ranking, 0), RankOf(ranking, 20));
  double total = 0.0;
  for (const RankedSuspect& s : ranking) total += s.score;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(CausalGraphTest, IntactEdgesDoNotLeakIntoTheRanking) {
  // Metric 5 sits on many intact invariants but only one broken one; the
  // intact edges must contribute nothing to anyone's score.
  InvariantGraph sparse = MakeGraph({{5, 6, 0.7, true, 0.3}});
  InvariantGraph dense = MakeGraph({
      {5, 6, 0.7, true, 0.3},
      {5, 7, 0.9, false, 0.0},
      {5, 8, 0.9, false, 0.0},
      {4, 5, 0.9, false, 0.0},
  });
  std::vector<RankedSuspect> a = RankSuspects(sparse);
  std::vector<RankedSuspect> b = RankSuspects(dense);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].metric, b[i].metric);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

TEST(CausalGraphTest, TopKTruncatesButZeroMeansAll) {
  InvariantGraph graph = MakeGraph({
      {0, 1, 0.9, true, 0.9},
      {0, 2, 0.8, true, 0.7},
      {0, 3, 0.7, true, 0.5},
      {0, 4, 0.6, true, 0.3},
  });
  EXPECT_EQ(RankSuspects(graph, {.top_k = 2}).size(), 2u);
  EXPECT_EQ(RankSuspects(graph, {.top_k = 0}).size(), 5u);
}

// ---------------------------------------------------------------------------
// Ranking properties.
// ---------------------------------------------------------------------------

// A moderately irregular broken subgraph used by the property tests: a hub
// (metric h0) with three decisively broken spokes, plus a weaker side pair.
std::vector<Edge> Fixture(const std::vector<int>& m) {
  return {
      {m[0], m[1], 0.95, true, 0.80},
      {m[0], m[2], 0.90, true, 0.60},
      {m[0], m[3], 0.85, true, 0.40},
      {m[1], m[2], 0.70, true, 0.20},
      {m[4], m[5], 0.60, true, 0.15},
      {m[3], m[5], 0.40, true, 0.10},
      {m[2], m[5], 0.50, false, 0.0},
  };
}

TEST(CausalRankingTest, PermutationInvariance) {
  // Relabel every metric through a nontrivial permutation; the scores must
  // map across bit-for-bit (MultisetSum makes each sum independent of the
  // order the neighbors are visited in). Rank everybody (top_k = 0): a
  // truncation boundary would otherwise resolve exact ties by metric id,
  // which is the one thing that legitimately is not label-blind.
  const std::vector<int> base = {2, 5, 9, 14, 20, 25};
  const std::vector<int> permuted = {17, 3, 22, 0, 11, 8};
  std::vector<RankedSuspect> a =
      RankSuspects(MakeGraph(Fixture(base)), {.top_k = 0});
  std::vector<RankedSuspect> b =
      RankSuspects(MakeGraph(Fixture(permuted)), {.top_k = 0});
  ASSERT_EQ(a.size(), b.size());
  std::map<int, double> base_scores;
  for (const RankedSuspect& s : a) base_scores[s.metric] = s.score;
  std::map<int, double> permuted_scores;
  for (const RankedSuspect& s : b) permuted_scores[s.metric] = s.score;
  for (size_t i = 0; i < base.size(); ++i) {
    const bool in_a = base_scores.count(base[i]) > 0;
    const bool in_b = permuted_scores.count(permuted[i]) > 0;
    EXPECT_EQ(in_a, in_b);
    if (in_a && in_b) {
      // Bitwise, not approximate: the walk must be exactly label-blind.
      EXPECT_EQ(base_scores[base[i]], permuted_scores[permuted[i]])
          << "metric " << base[i] << " -> " << permuted[i];
    }
  }
  // The ranking order itself must map across too.
  for (size_t i = 0; i < a.size(); ++i) {
    const auto it = std::find(base.begin(), base.end(), a[i].metric);
    ASSERT_NE(it, base.end());
    EXPECT_EQ(b[i].metric, permuted[it - base.begin()]);
  }
}

TEST(CausalRankingTest, MonotoneInViolationCount) {
  // Star construction: metric 0 starts with two broken spokes while metric
  // 13 has three. Breaking more edges onto metric 0 must strictly raise its
  // score and eventually overtake the rival hub.
  std::vector<Edge> spec = {
      {0, 1, 0.9, true, 0.5},  {0, 2, 0.9, true, 0.5},
      {13, 14, 0.9, true, 0.5}, {13, 15, 0.9, true, 0.5},
      {13, 16, 0.9, true, 0.5},
  };
  auto score_of = [](const std::vector<RankedSuspect>& r, int metric) {
    for (const RankedSuspect& s : r) {
      if (s.metric == metric) return s.score;
    }
    return 0.0;
  };
  std::vector<RankedSuspect> before =
      RankSuspects(MakeGraph(spec), {.top_k = 0});
  EXPECT_LT(score_of(before, 0), score_of(before, 13));

  double prev = score_of(before, 0);
  for (int spoke = 3; spoke <= 6; ++spoke) {
    spec.push_back({0, spoke, 0.9, true, 0.5});
    std::vector<RankedSuspect> now =
        RankSuspects(MakeGraph(spec), {.top_k = 0});
    EXPECT_GT(score_of(now, 0), prev)
        << "adding broken spoke " << spoke << " did not raise the hub";
    prev = score_of(now, 0);
  }
  // With 6 spokes vs. the rival's 3, metric 0 is now the top suspect.
  std::vector<RankedSuspect> final_ranking = RankSuspects(MakeGraph(spec));
  ASSERT_FALSE(final_ranking.empty());
  EXPECT_EQ(final_ranking[0].metric, 0);
}

TEST(CausalRankingTest, ByteIdenticalAcrossRepeatsAndThreads) {
  InvariantGraph graph = MakeGraph(Fixture({2, 5, 9, 14, 20, 25}));
  const std::vector<RankedSuspect> reference = RankSuspects(graph);
  ASSERT_FALSE(reference.empty());

  auto expect_bitwise_equal = [&](const std::vector<RankedSuspect>& got) {
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].metric, reference[i].metric);
      // memcmp on the raw doubles: "close enough" is not enough here.
      EXPECT_EQ(std::memcmp(&got[i].score, &reference[i].score,
                            sizeof(double)),
                0)
          << "rank " << i + 1 << " score drifted";
    }
  };

  for (int repeat = 0; repeat < 8; ++repeat) {
    expect_bitwise_equal(RankSuspects(graph));
  }

  // Concurrent rankings over the same graph from several threads.
  constexpr int kThreads = 4;
  std::vector<std::vector<RankedSuspect>> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(
          [&graph, &results, t] { results[t] = RankSuspects(graph); });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (const std::vector<RankedSuspect>& got : results) {
    expect_bitwise_equal(got);
  }
}

TEST(CausalRankingTest, ScoresAreNormalizedAndOrdered) {
  std::vector<RankedSuspect> ranking =
      RankSuspects(MakeGraph(Fixture({2, 5, 9, 14, 20, 25})), {.top_k = 0});
  ASSERT_FALSE(ranking.empty());
  double total = 0.0;
  for (size_t i = 0; i < ranking.size(); ++i) {
    total += ranking[i].score;
    if (i > 0) {
      // Descending scores; ties break toward the lower metric id.
      EXPECT_GE(ranking[i - 1].score, ranking[i].score);
      if (ranking[i - 1].score == ranking[i].score) {
        EXPECT_LT(ranking[i - 1].metric, ranking[i].metric);
      }
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
}  // namespace invarnetx::causal
