// Failure-injection / fuzz-style robustness suites: parsers must reject
// arbitrary mutations of valid inputs with an error Status - never crash,
// hang, or silently accept corrupted data as something else.

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/evaluate.h"
#include "core/pipeline.h"
#include "telemetry/runner.h"
#include "telemetry/trace_io.h"
#include "xmlstore/xml.h"

namespace invarnetx {
namespace {

// Applies one random mutation (byte flip, deletion, insertion, truncation,
// or block duplication) to the text.
std::string Mutate(const std::string& text, Rng* rng) {
  if (text.empty()) return text;
  std::string out = text;
  const size_t pos = rng->UniformInt(out.size());
  switch (rng->UniformInt(5)) {
    case 0:  // flip a byte to a random printable character
      out[pos] = static_cast<char>(' ' + rng->UniformInt(95));
      break;
    case 1:  // delete a byte
      out.erase(pos, 1);
      break;
    case 2:  // insert a random byte
      out.insert(pos, 1, static_cast<char>(' ' + rng->UniformInt(95)));
      break;
    case 3:  // truncate
      out.resize(pos);
      break;
    default: {  // duplicate a small block
      const size_t len = std::min<size_t>(1 + rng->UniformInt(40),
                                          out.size() - pos);
      out.insert(pos, out.substr(pos, len));
      break;
    }
  }
  return out;
}

TEST(XmlFuzzTest, MutatedDocumentsNeverCrash) {
  xmlstore::XmlNode root;
  root.name = "doc";
  root.SetAttr("a", "value with <specials> & \"quotes\"");
  for (int i = 0; i < 5; ++i) {
    xmlstore::XmlNode& child = root.AddChild("item" + std::to_string(i));
    child.SetAttr("k", std::to_string(i));
    child.text = "text " + std::to_string(i);
  }
  const std::string valid = xmlstore::WriteXml(root);
  Rng rng(77);
  int accepted = 0;
  for (int round = 0; round < 500; ++round) {
    const std::string mutated = Mutate(valid, &rng);
    Result<xmlstore::XmlNode> parsed = xmlstore::ParseXml(mutated);
    // Either outcome is fine; what matters is no crash / no hang / a clean
    // Status on rejection.
    if (parsed.ok()) ++accepted;
  }
  // Most single mutations break well-formedness; sanity-check the corpus
  // actually exercised the error paths.
  EXPECT_LT(accepted, 450);
}

TEST(XmlFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(78);
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    const size_t len = rng.UniformInt(200);
    for (size_t i = 0; i < len; ++i) {
      garbage += static_cast<char>(rng.UniformInt(256));
    }
    (void)xmlstore::ParseXml(garbage);  // must simply return a Status
  }
}

TEST(TraceFuzzTest, MutatedTracesNeverCrash) {
  telemetry::RunConfig config;
  config.workload = workload::WorkloadType::kGrep;
  config.seed = 5;
  const std::string valid =
      telemetry::WriteTraceCsv(telemetry::SimulateRun(config).value());
  Rng rng(79);
  for (int round = 0; round < 300; ++round) {
    const std::string mutated = Mutate(valid, &rng);
    Result<telemetry::RunTrace> parsed = telemetry::ParseTraceCsv(mutated);
    if (!parsed.ok()) continue;
    // Anything accepted must still be structurally consistent.
    for (const telemetry::NodeTrace& node : parsed.value().nodes) {
      EXPECT_EQ(node.cpi.size(),
                static_cast<size_t>(parsed.value().ticks));
    }
  }
}

TEST(PipelineRobustnessTest, RejectsNonFiniteObservations) {
  auto normal = core::SimulateNormalRuns(workload::WorkloadType::kGrep, 4, 9);
  core::InvarNetX pipeline;
  const core::OperationContext context{workload::WorkloadType::kGrep,
                                       "10.0.0.2"};
  ASSERT_TRUE(pipeline.TrainContext(context, normal.value(), 1).ok());

  auto poisoned = core::SimulateNormalRuns(workload::WorkloadType::kGrep, 1,
                                           10);
  poisoned.value()[0].nodes[1].cpi[5] =
      std::numeric_limits<double>::quiet_NaN();
  Result<core::DiagnosisReport> report =
      pipeline.Diagnose(context, poisoned.value()[0], 1);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);

  auto inf_metric = core::SimulateNormalRuns(workload::WorkloadType::kGrep,
                                             1, 11);
  inf_metric.value()[0].nodes[1].metrics[3][2] =
      std::numeric_limits<double>::infinity();
  EXPECT_FALSE(pipeline.Diagnose(context, inf_metric.value()[0], 1).ok());
}

TEST(PipelineRobustnessTest, RejectsNonFiniteTrainingData) {
  auto normal =
      core::SimulateNormalRuns(workload::WorkloadType::kGrep, 4, 12);
  normal.value()[2].nodes[1].metrics[0][0] =
      -std::numeric_limits<double>::infinity();
  core::InvarNetX pipeline;
  const core::OperationContext context{workload::WorkloadType::kGrep,
                                       "10.0.0.2"};
  EXPECT_FALSE(pipeline.TrainContext(context, normal.value(), 1).ok());
}

TEST(StoreRobustnessTest, CorruptedStoreFilesRejectedCleanly) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "invarnetx_robustness_store").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  auto normal = core::SimulateNormalRuns(workload::WorkloadType::kGrep, 4, 13);
  core::InvarNetX pipeline;
  const core::OperationContext context{workload::WorkloadType::kGrep,
                                       "10.0.0.2"};
  ASSERT_TRUE(pipeline.TrainContext(context, normal.value(), 1).ok());
  ASSERT_TRUE(pipeline.SaveToDirectory(dir).ok());

  // Mutations of each store file must load as errors, never crash.
  Rng rng(80);
  for (const char* name : {"models.xml", "invariants.xml", "signatures.xml"}) {
    const std::string path = dir + "/" + name;
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string valid = buffer.str();
    for (int round = 0; round < 50; ++round) {
      {
        std::ofstream out(path);
        out << Mutate(valid, &rng);
      }
      core::InvarNetX fresh;
      (void)fresh.LoadFromDirectory(dir);  // Status either way; no crash
    }
    // Restore the valid file for the next iteration.
    std::ofstream out(path);
    out << valid;
  }
  // Fully restored store still loads.
  core::InvarNetX restored;
  EXPECT_TRUE(restored.LoadFromDirectory(dir).ok());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace invarnetx
