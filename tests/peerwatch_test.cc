#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "peerwatch/peerwatch.h"

namespace invarnetx::peerwatch {
namespace {

using workload::WorkloadType;

class PeerWatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    normal_ = new std::vector<telemetry::RunTrace>(
        core::SimulateNormalRuns(WorkloadType::kWordCount, 8, 42).value());
    detector_ = new PeerWatch();
    ASSERT_TRUE(detector_->Train(*normal_).ok());
  }
  static void TearDownTestSuite() {
    delete detector_;
    delete normal_;
  }

  static std::vector<telemetry::RunTrace>* normal_;
  static PeerWatch* detector_;
};

std::vector<telemetry::RunTrace>* PeerWatchTest::normal_ = nullptr;
PeerWatch* PeerWatchTest::detector_ = nullptr;

TEST_F(PeerWatchTest, TrainingValidatesInput) {
  PeerWatch fresh;
  EXPECT_FALSE(fresh.trained());
  EXPECT_FALSE(fresh.Train({}).ok());
  std::vector<telemetry::RunTrace> one(normal_->begin(),
                                       normal_->begin() + 1);
  EXPECT_FALSE(fresh.Train(one).ok());
  // Detect before Train fails.
  EXPECT_FALSE(fresh.Detect((*normal_)[0]).ok());
}

TEST_F(PeerWatchTest, TracksUsefulCorrelations) {
  EXPECT_TRUE(detector_->trained());
  // Peers run the same job, so plenty of metrics correlate across nodes.
  EXPECT_GT(detector_->NumTrackedCorrelations(), 50);
}

TEST_F(PeerWatchTest, QuietOnNormalRuns) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    auto clean = core::SimulateNormalRuns(WorkloadType::kWordCount, 1,
                                          900 + seed);
    const PeerWatch::Scan scan = detector_->Detect(clean.value()[0]).value();
    EXPECT_FALSE(scan.AnyFlagged()) << "seed " << seed;
  }
}

TEST_F(PeerWatchTest, FlagsTheNodeLocalVictim) {
  int correct = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto run = core::SimulateFaultRun(WorkloadType::kWordCount,
                                      faults::FaultType::kSuspend,
                                      800 + seed);
    const PeerWatch::Scan scan = detector_->Detect(run.value()).value();
    if (scan.AnyFlagged() &&
        scan.nodes[static_cast<size_t>(scan.culprit)].node_ip ==
            "10.0.0.2") {
      ++correct;
    }
  }
  EXPECT_GE(correct, 4);
}

TEST_F(PeerWatchTest, BlindToClusterWideFaults) {
  // The paper's Sec. 5 critique: every node degrades identically, peers
  // stay correlated, nothing is flagged.
  int flagged = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto run = core::SimulateFaultRun(WorkloadType::kWordCount,
                                      faults::FaultType::kMisconfig,
                                      700 + seed);
    const PeerWatch::Scan scan = detector_->Detect(run.value()).value();
    if (scan.AnyFlagged()) ++flagged;
  }
  EXPECT_LE(flagged, 1);
}

TEST_F(PeerWatchTest, DetectRejectsMismatchedCluster) {
  telemetry::RunTrace wrong;
  wrong.nodes.resize(2);  // master + 1 slave, trained on 4
  EXPECT_FALSE(detector_->Detect(wrong).ok());
}

TEST_F(PeerWatchTest, ScoresExposeEvidence) {
  auto run = core::SimulateFaultRun(WorkloadType::kWordCount,
                                    faults::FaultType::kSuspend, 801);
  const PeerWatch::Scan scan = detector_->Detect(run.value()).value();
  ASSERT_EQ(scan.nodes.size(), 4u);
  for (const PeerWatch::NodeScore& node : scan.nodes) {
    EXPECT_GT(node.tracked, 0);
    EXPECT_GE(node.fraction(), 0.0);
    EXPECT_LE(node.fraction(), 1.0);
  }
  // The victim accumulates more deviated peers than the healthy nodes.
  ASSERT_TRUE(scan.AnyFlagged());
  const PeerWatch::NodeScore& culprit =
      scan.nodes[static_cast<size_t>(scan.culprit)];
  for (const PeerWatch::NodeScore& node : scan.nodes) {
    if (node.node_index != culprit.node_index) {
      EXPECT_GE(culprit.fraction(), node.fraction());
    }
  }
}

}  // namespace
}  // namespace invarnetx::peerwatch
