#include "core/causal_hints.h"

#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/evaluate.h"
#include "core/report.h"
#include "core/pipeline.h"
#include "gtest/gtest.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace invarnetx::core {
namespace {

namespace tm = invarnetx::telemetry;

// A context model whose only invariants are the given metric pairs, and a
// report that marks all of them violated.
struct Scenario {
  ContextModel model;
  DiagnosisReport report;
};

Scenario MakeScenario(const std::vector<std::pair<int, int>>& pairs) {
  Scenario s;
  s.model.invariants.present.assign(tm::kNumMetricPairs, 0);
  s.model.invariants.values.assign(tm::kNumMetricPairs, 0.0);
  for (const auto& [a, b] : pairs) {
    s.model.invariants.present[static_cast<size_t>(tm::PairIndex(a, b))] = 1;
  }
  s.report.anomaly_detected = true;
  s.report.violations.assign(pairs.size(), 1);
  s.report.num_violations = static_cast<int>(pairs.size());
  return s;
}

// A trace where `root` strictly precedes every other listed metric:
// follower_t = root_{t-1}. Unlisted metrics get uncorrelated noise.
tm::NodeTrace MakeLeaderTrace(int root, const std::vector<int>& followers,
                              int ticks) {
  tm::NodeTrace node;
  node.ip = "10.0.0.2";
  Rng rng(2026);
  std::vector<double> driver(static_cast<size_t>(ticks));
  for (double& v : driver) v = rng.Uniform();
  node.metrics[static_cast<size_t>(root)] = driver;
  for (int m : followers) {
    std::vector<double> lagged(static_cast<size_t>(ticks));
    lagged[0] = driver[0];
    for (int t = 1; t < ticks; ++t) {
      lagged[static_cast<size_t>(t)] = driver[static_cast<size_t>(t - 1)];
    }
    node.metrics[static_cast<size_t>(m)] = lagged;
  }
  for (int m = 0; m < tm::kNumMetrics; ++m) {
    if (node.metrics[static_cast<size_t>(m)].empty()) {
      std::vector<double> noise(static_cast<size_t>(ticks));
      for (double& v : noise) v = rng.Uniform();
      node.metrics[static_cast<size_t>(m)] = noise;
    }
  }
  return node;
}

TEST(CausalHintsTest, EmptyViolationsYieldNoHints) {
  Scenario s = MakeScenario({{tm::kCpuUserPct, tm::kLoadAvg1m}});
  s.report.violations.assign(1, 0);
  s.report.num_violations = 0;
  tm::NodeTrace node = MakeLeaderTrace(tm::kCpuUserPct, {tm::kLoadAvg1m}, 60);
  Result<std::vector<CausalHint>> hints =
      RankRootMetrics(s.report, s.model, node);
  ASSERT_TRUE(hints.ok()) << hints.status().ToString();
  EXPECT_TRUE(hints.value().empty());
}

TEST(CausalHintsTest, RanksTheTemporalLeaderFirst) {
  // cpu_user drives load and ctx switches with a one-tick delay; the root
  // should lead both followers and take the top slot.
  Scenario s = MakeScenario({{tm::kCpuUserPct, tm::kLoadAvg1m},
                             {tm::kCpuUserPct, tm::kCtxSwitchesPerSec},
                             {tm::kLoadAvg1m, tm::kCtxSwitchesPerSec}});
  tm::NodeTrace node = MakeLeaderTrace(
      tm::kCpuUserPct, {tm::kLoadAvg1m, tm::kCtxSwitchesPerSec}, 120);
  Result<std::vector<CausalHint>> hints =
      RankRootMetrics(s.report, s.model, node);
  ASSERT_TRUE(hints.ok()) << hints.status().ToString();
  ASSERT_EQ(hints.value().size(), 3u);
  EXPECT_EQ(hints.value()[0].metric, tm::kCpuUserPct);
  EXPECT_EQ(hints.value()[0].leads, 2);
  EXPECT_EQ(hints.value()[0].led_by, 0);
  EXPECT_EQ(hints.value()[0].metric_name,
            tm::MetricName(tm::kCpuUserPct));
  // Followers are led by the root but do not lead each other (they are
  // copies of the same lagged series, so neither direction wins).
  for (size_t i = 1; i < hints.value().size(); ++i) {
    EXPECT_EQ(hints.value()[i].led_by, 1) << "hint " << i;
    EXPECT_LT(hints.value()[i].score(), hints.value()[0].score());
  }
}

TEST(CausalHintsTest, SortedByDescendingScoreWithMetricTiebreak) {
  Scenario s = MakeScenario({{tm::kCpuUserPct, tm::kLoadAvg1m},
                             {tm::kMemUsedMb, tm::kMemFreeMb}});
  // No temporal structure at all: every score is 0 and ordering falls back
  // to ascending metric id.
  tm::NodeTrace node = MakeLeaderTrace(tm::kDiskUtilPct, {}, 120);
  Result<std::vector<CausalHint>> hints =
      RankRootMetrics(s.report, s.model, node);
  ASSERT_TRUE(hints.ok()) << hints.status().ToString();
  ASSERT_EQ(hints.value().size(), 4u);
  for (size_t i = 1; i < hints.value().size(); ++i) {
    const CausalHint& prev = hints.value()[i - 1];
    const CausalHint& cur = hints.value()[i];
    EXPECT_TRUE(prev.score() > cur.score() ||
                (prev.score() == cur.score() && prev.metric < cur.metric));
  }
}

TEST(CausalHintsTest, RejectsMismatchedReport) {
  Scenario s = MakeScenario({{tm::kCpuUserPct, tm::kLoadAvg1m}});
  s.report.violations.push_back(1);  // one more entry than invariants
  tm::NodeTrace node = MakeLeaderTrace(tm::kCpuUserPct, {tm::kLoadAvg1m}, 60);
  Result<std::vector<CausalHint>> hints =
      RankRootMetrics(s.report, s.model, node);
  EXPECT_FALSE(hints.ok());
}

TEST(CausalHintsTest, RejectsTooShortSeries) {
  Scenario s = MakeScenario({{tm::kCpuUserPct, tm::kLoadAvg1m}});
  tm::NodeTrace node = MakeLeaderTrace(tm::kCpuUserPct, {tm::kLoadAvg1m}, 2);
  Result<std::vector<CausalHint>> hints =
      RankRootMetrics(s.report, s.model, node);
  EXPECT_FALSE(hints.ok());
}

TEST(CausalHintsTest, LargeMarginSuppressesAllEdges) {
  Scenario s = MakeScenario({{tm::kCpuUserPct, tm::kLoadAvg1m}});
  tm::NodeTrace node = MakeLeaderTrace(tm::kCpuUserPct, {tm::kLoadAvg1m}, 120);
  Result<std::vector<CausalHint>> hints =
      RankRootMetrics(s.report, s.model, node, /*lead_margin=*/10.0);
  ASSERT_TRUE(hints.ok()) << hints.status().ToString();
  for (const CausalHint& h : hints.value()) {
    EXPECT_EQ(h.leads, 0);
    EXPECT_EQ(h.led_by, 0);
  }
}

TEST(CausalHintsTest, WorksOnAPipelineDiagnosisEndToEnd) {
  // Full-stack smoke: train a WordCount context, inject a CPU hog, and
  // check the hints cover exactly the implicated metrics.
  InvarNetX pipeline;
  auto normals = SimulateNormalRuns(workload::WorkloadType::kWordCount, 8, 7);
  ASSERT_TRUE(normals.ok());
  const OperationContext context{workload::WorkloadType::kWordCount,
                                 "10.0.0.2"};
  ASSERT_TRUE(pipeline.TrainContext(context, normals.value(), 1).ok());

  auto faulty = SimulateFaultRun(workload::WorkloadType::kWordCount,
                                 faults::FaultType::kCpuHog, 77);
  ASSERT_TRUE(faulty.ok());
  Result<DiagnosisReport> report = pipeline.Diagnose(context, faulty.value(), 1);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report.value().anomaly_detected);

  Result<std::shared_ptr<const ContextModel>> model =
      pipeline.GetContext(context);
  ASSERT_TRUE(model.ok());
  Result<std::vector<CausalHint>> hints = RankRootMetrics(
      report.value(), *model.value(), faulty.value().nodes[1]);
  ASSERT_TRUE(hints.ok()) << hints.status().ToString();
  ASSERT_FALSE(hints.value().empty());

  // Every hinted metric is an endpoint of some violated invariant.
  const std::vector<int> pairs = model.value()->invariants.PairIndices();
  std::vector<bool> implicated(tm::kNumMetrics, false);
  for (size_t i = 0; i < report.value().violations.size(); ++i) {
    if (!report.value().violations[i]) continue;
    int a = 0, b = 0;
    tm::PairFromIndex(pairs[i], &a, &b);
    implicated[static_cast<size_t>(a)] = true;
    implicated[static_cast<size_t>(b)] = true;
  }
  size_t expected = 0;
  for (bool f : implicated) expected += f ? 1 : 0;
  EXPECT_EQ(hints.value().size(), expected);
  for (const CausalHint& h : hints.value()) {
    EXPECT_TRUE(implicated[static_cast<size_t>(h.metric)])
        << h.metric_name << " not implicated";
  }
}

TEST(CausalHintsTest, ReportEmbedsSuspectedOriginSection) {
  InvarNetX pipeline;
  auto normals = SimulateNormalRuns(workload::WorkloadType::kWordCount, 8, 7);
  ASSERT_TRUE(normals.ok());
  const OperationContext context{workload::WorkloadType::kWordCount,
                                 "10.0.0.2"};
  ASSERT_TRUE(pipeline.TrainContext(context, normals.value(), 1).ok());
  auto faulty = SimulateFaultRun(workload::WorkloadType::kWordCount,
                                 faults::FaultType::kCpuHog, 78);
  ASSERT_TRUE(faulty.ok());
  Result<DiagnosisReport> report = pipeline.Diagnose(context, faulty.value(), 1);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().anomaly_detected);
  const std::string markdown = RenderIncidentReport(
      context, report.value(), *pipeline.GetContext(context).value(),
      faulty.value().ticks, &faulty.value().nodes[1]);
  EXPECT_NE(markdown.find("Suspected origin metrics"), std::string::npos);
  // Without a node trace the section is omitted.
  const std::string without = RenderIncidentReport(
      context, report.value(), *pipeline.GetContext(context).value(),
      faulty.value().ticks);
  EXPECT_EQ(without.find("Suspected origin metrics"), std::string::npos);
}

}  // namespace
}  // namespace invarnetx::core
