// Tier-2 suite for the fault-campaign harness: the scenario parser, the
// scoreboard renderings, the golden-report gate, and a fast end-to-end
// campaign whose scoreboards must be bit-identical across thread counts.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/runner.h"
#include "campaign/scenario.h"
#include "campaign/scoreboard.h"
#include "faults/fault.h"
#include "telemetry/metrics.h"
#include "workload/spec.h"

namespace invarnetx::campaign {
namespace {

namespace fs = std::filesystem;

// A scenario small enough to run end to end in well under a second: two
// slaves, three training runs, a three-problem signature catalog.
constexpr const char* kMiniScenario = R"(# test scenario
name = mini-cpu-hog
workload = wordcount
fault = cpu-hog
seed = 7
slaves = 2
normal-runs = 3
signature-runs = 1
test-runs = 2
signatures = cpu-hog,mem-hog,disk-hog
)";

// The same cluster with the injected fault held out of the catalog: the
// signature engine has never seen a CPU hog, so only the causal suspect
// ranking can localize it.
constexpr const char* kMiniHoldOutScenario = R"(# unknown-fault test scenario
name = mini-unseen-cpu-hog
workload = wordcount
fault = cpu-hog
seed = 7
slaves = 2
normal-runs = 3
signature-runs = 1
test-runs = 2
signatures = all-except-fault
)";

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            ("invarnetx_campaign_" + tag + "_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string Str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

void WriteFile(const fs::path& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

// ------------------------------------------------------- scenario parser --

TEST(ScenarioParserTest, ParsesAllKeys) {
  const Result<Scenario> parsed = ParseScenario(R"(
# comment
name = full
workload = sort
fault = mem-hog
expected-cause = memory-pressure
seed = 99
slaves = 3
normal-runs = 4
signature-runs = 2
test-runs = 5
ticks = 80
fault-start = 12
fault-duration = 18
target-node = 2
signatures = mem-hog,cpu-hog
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const Scenario& s = parsed.value();
  EXPECT_EQ(s.name, "full");
  EXPECT_EQ(s.workload, workload::WorkloadType::kSort);
  EXPECT_EQ(s.fault, faults::FaultType::kMemHog);
  EXPECT_EQ(s.expected_cause, "memory-pressure");
  EXPECT_EQ(s.seed, 99u);
  EXPECT_EQ(s.slaves, 3);
  EXPECT_EQ(s.normal_runs, 4);
  EXPECT_EQ(s.signature_runs, 2);
  EXPECT_EQ(s.test_runs, 5);
  EXPECT_EQ(s.interactive_ticks, 80);
  EXPECT_EQ(s.window.start_tick, 12);
  EXPECT_EQ(s.window.duration_ticks, 18);
  EXPECT_EQ(s.window.target_node, 2u);
  ASSERT_EQ(s.signature_faults.size(), 2u);
  EXPECT_EQ(s.signature_faults[0], faults::FaultType::kMemHog);
  EXPECT_EQ(s.signature_faults[1], faults::FaultType::kCpuHog);
}

TEST(ScenarioParserTest, DefaultsExpectedCauseAndWindow) {
  const Result<Scenario> parsed = ParseScenario(
      "name = d\nworkload = grep\nfault = disk-hog\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().expected_cause, "disk-hog");
  // DefaultFaultWindow(disk-hog): slave fault, default schedule.
  EXPECT_EQ(parsed.value().window.start_tick, 8);
  EXPECT_EQ(parsed.value().window.duration_ticks, 30);
  EXPECT_EQ(parsed.value().window.target_node, 1u);
  // `signatures` omitted expands to the whole applicable catalog, which
  // always includes the injected fault itself.
  EXPECT_GT(parsed.value().signature_faults.size(), 5u);
  EXPECT_NE(std::find(parsed.value().signature_faults.begin(),
                      parsed.value().signature_faults.end(),
                      faults::FaultType::kDiskHog),
            parsed.value().signature_faults.end());
}

TEST(ScenarioParserTest, RejectsMalformedInputs) {
  // Missing required keys.
  EXPECT_FALSE(ParseScenario("workload = sort\nfault = cpu-hog\n").ok());
  EXPECT_FALSE(ParseScenario("name = x\nfault = cpu-hog\n").ok());
  EXPECT_FALSE(ParseScenario("name = x\nworkload = sort\n").ok());
  // Typos must not silently change a campaign.
  EXPECT_FALSE(ParseScenario(
      "name = x\nworkload = sort\nfault = cpu-hog\nsignature_runs = 2\n")
          .ok());
  // Duplicate keys are ambiguous.
  EXPECT_FALSE(
      ParseScenario("name = x\nname = y\nworkload = sort\nfault = cpu-hog\n")
          .ok());
  // Unknown enum values; the error names the valid set.
  const Result<Scenario> bad_workload =
      ParseScenario("name = x\nworkload = mapreduce\nfault = cpu-hog\n");
  ASSERT_FALSE(bad_workload.ok());
  EXPECT_NE(bad_workload.status().message().find("wordcount"),
            std::string::npos);
  EXPECT_FALSE(ParseScenario("name = x\nworkload = sort\nfault = gremlin\n")
                   .ok());
  // Numeric fields must be whole tokens.
  EXPECT_FALSE(ParseScenario(
      "name = x\nworkload = sort\nfault = cpu-hog\nseed = 12abc\n")
          .ok());
  // A target node outside the cluster.
  EXPECT_FALSE(ParseScenario(
      "name = x\nworkload = sort\nfault = cpu-hog\nslaves = 2\n"
      "target-node = 5\n")
          .ok());
  // The expected fault must be part of the signature catalog.
  EXPECT_FALSE(ParseScenario(
      "name = x\nworkload = sort\nfault = cpu-hog\n"
      "signatures = mem-hog,disk-hog\n")
          .ok());
}

TEST(ScenarioParserTest, HoldOutExcludesInjectedFaultFromCatalog) {
  const Result<Scenario> parsed = ParseScenario(
      "name = x\nworkload = wordcount\nfault = cpu-hog\n"
      "signatures = all-except-fault\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const Scenario& s = parsed.value();
  EXPECT_TRUE(s.hold_out);
  // The catalog expanded to the applicable faults minus the injected one.
  EXPECT_FALSE(s.signature_faults.empty());
  EXPECT_EQ(std::count(s.signature_faults.begin(), s.signature_faults.end(),
                       faults::FaultType::kCpuHog),
            0);
  // The ranked-metric answer list defaults to the fault's footprint.
  EXPECT_EQ(s.expected_metrics,
            DefaultCulpritMetrics(faults::FaultType::kCpuHog));
  // A plain catalog never holds out.
  const Result<Scenario> plain = ParseScenario(
      "name = y\nworkload = wordcount\nfault = cpu-hog\nsignatures = all\n");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.value().hold_out);
  EXPECT_EQ(std::count(plain.value().signature_faults.begin(),
                       plain.value().signature_faults.end(),
                       faults::FaultType::kCpuHog),
            1);
}

TEST(ScenarioParserTest, ExpectedMetricsOverrideAndErrors) {
  const Result<Scenario> parsed = ParseScenario(
      "name = x\nworkload = sort\nfault = mem-hog\n"
      "expected-metrics = mem_used_mb, swap_used_mb\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const std::vector<int> want = {
      telemetry::MetricFromName("mem_used_mb").value(),
      telemetry::MetricFromName("swap_used_mb").value()};
  EXPECT_EQ(parsed.value().expected_metrics, want);

  // Unknown metric names and empty lists are hard errors, like every other
  // scenario-key typo.
  EXPECT_FALSE(ParseScenario(
                   "name = x\nworkload = sort\nfault = mem-hog\n"
                   "expected-metrics = mem_used_mb, bogus_metric\n")
                   .ok());
  EXPECT_FALSE(ParseScenario(
                   "name = x\nworkload = sort\nfault = mem-hog\n"
                   "expected-metrics = ,\n")
                   .ok());
}

TEST(ScenarioParserTest, DirectoryLoadsSortedAndRejectsDuplicates) {
  TempDir dir("parse");
  WriteFile(dir.path() / "02-b.scenario",
            "name = bravo\nworkload = sort\nfault = mem-hog\n");
  WriteFile(dir.path() / "01-a.scenario",
            "name = alpha\nworkload = grep\nfault = cpu-hog\n");
  WriteFile(dir.path() / "notes.txt", "not a scenario");
  Result<std::vector<Scenario>> loaded = LoadScenarioDirectory(dir.Str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].name, "alpha");
  EXPECT_EQ(loaded.value()[1].name, "bravo");

  WriteFile(dir.path() / "03-dup.scenario",
            "name = alpha\nworkload = sort\nfault = mem-hog\n");
  EXPECT_FALSE(LoadScenarioDirectory(dir.Str()).ok());

  TempDir empty("empty");
  EXPECT_FALSE(LoadScenarioDirectory(empty.Str()).ok());
}

// ------------------------------------------------------------ scoreboard --

CampaignResult SyntheticResult() {
  CampaignResult result;
  ScenarioScore score;
  score.name = "synthetic";
  score.workload = workload::WorkloadType::kGrep;
  score.fault = faults::FaultType::kDiskHog;
  score.expected_cause = "disk-hog";
  score.window.start_tick = 8;
  score.window.duration_ticks = 30;
  score.window.target_node = 1;
  score.test_runs = 2;
  score.detected = 2;
  score.top1_correct = 1;
  score.topk_correct = 2;
  score.found_any = 2;
  score.precision_at_1 = 0.5;
  score.precision_at_k = 1.0;
  score.recall = 1.0;
  score.map = 0.75;
  score.mean_detection_latency_ticks = 2.5;
  score.expected_metrics = DefaultCulpritMetrics(faults::FaultType::kDiskHog);
  score.causal_top1_correct = 1;
  score.causal_top3_correct = 2;
  score.causal_topk_correct = 2;
  score.causal_found = 2;
  score.causal_precision_at_1 = 0.5;
  score.causal_precision_at_k = 1.0;
  score.causal_recall = 1.0;
  score.causal_recall_at_3 = 1.0;
  score.causal_map = 0.75;
  RunOutcome run;
  run.rep = 0;
  run.detected = true;
  run.known_problem = true;
  run.first_alarm_tick = 10;
  run.num_violations = 12;
  run.expected_rank = 1;
  run.causes.push_back(core::RankedCause{"disk-hog", 0.625});
  run.causes.push_back(core::RankedCause{"mem-hog", 0.125});
  run.causal_rank = 1;
  run.suspects.push_back(causal::RankedSuspect{
      telemetry::MetricFromName("disk_util_pct").value(), 0.5});
  run.suspects.push_back(causal::RankedSuspect{
      telemetry::MetricFromName("cpu_iowait_pct").value(), 0.25});
  score.runs.push_back(run);
  result.scores.push_back(score);
  result.total_test_runs = 2;
  result.mean_precision_at_1 = 0.5;
  result.mean_precision_at_k = 1.0;
  result.mean_recall = 1.0;
  result.mean_map = 0.75;
  result.mean_detection_latency_ticks = 2.5;
  result.known_scenarios = 1;
  result.mean_known_precision_at_1 = 0.5;
  result.mean_causal_precision_at_1 = 0.5;
  result.mean_causal_precision_at_k = 1.0;
  result.mean_causal_recall = 1.0;
  result.mean_causal_map = 0.75;
  return result;
}

TEST(ScoreboardTest, CsvHasHeaderAndOneRowPerScenario) {
  const std::string csv = RenderCsv(SyntheticResult());
  std::istringstream lines(csv);
  std::string header, row, extra;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_FALSE(std::getline(lines, extra));
  EXPECT_NE(header.find("precision_at_1"), std::string::npos);
  EXPECT_NE(header.find("causal_precision_at_1"), std::string::npos);
  EXPECT_NE(header.find("causal_recall_at_3"), std::string::npos);
  EXPECT_NE(header.find("hold_out"), std::string::npos);
  EXPECT_NE(row.find("synthetic"), std::string::npos);
  EXPECT_NE(row.find("0.500000"), std::string::npos);
}

TEST(ScoreboardTest, JsonCarriesRunsAndSummary) {
  const std::string json = RenderJson(SyntheticResult());
  EXPECT_NE(json.find("\"scenarios\""), std::string::npos);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  EXPECT_NE(json.find("\"expected_rank\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"mean_precision_at_1\": 0.500000"),
            std::string::npos);
  // Head-to-head: both engines' verdicts travel with every run and the
  // summary carries the per-engine means.
  EXPECT_NE(json.find("\"causal_rank\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"top_suspect\": \"disk_util_pct\""),
            std::string::npos);
  EXPECT_NE(json.find("\"mean_causal_precision_at_1\": 0.500000"),
            std::string::npos);
  EXPECT_NE(json.find("\"mean_known_precision_at_1\": 0.500000"),
            std::string::npos);
}

TEST(ScoreboardTest, ReportNamesFaultScheduleAndRankedCauses) {
  const std::string report = RenderScenarioReport(SyntheticResult().scores[0]);
  EXPECT_NE(report.find("disk-hog @ tick 8 for 30 ticks on node 1"),
            std::string::npos);
  EXPECT_NE(report.find("1. disk-hog 0.625000"), std::string::npos);
  EXPECT_NE(report.find("p@1=0.500000"), std::string::npos);
  // The causal engine's side of the head-to-head.
  EXPECT_NE(report.find("expected-metrics = "), std::string::npos);
  EXPECT_NE(report.find("1. disk_util_pct 0.500000"), std::string::npos);
  EXPECT_NE(report.find("causal: c@1=0.500000"), std::string::npos);

  // The engine-comparison table is console-only (its latency columns are
  // measured), but its shape is still asserted.
  const std::string comparison =
      RenderEngineComparison(SyntheticResult());
  EXPECT_NE(comparison.find("sig_ms"), std::string::npos);
  EXPECT_NE(comparison.find("causal_ms"), std::string::npos);
  EXPECT_NE(comparison.find("synthetic"), std::string::npos);
}

// ---------------------------------------------------------- golden gate --

TEST(GoldenGateTest, UpdateThenCheckThenDetectDrift) {
  const CampaignResult result = SyntheticResult();
  TempDir dir("golden");
  const std::string golden = (dir.path() / "golden").string();
  std::string message;

  // First check without goldens fails and says what is missing.
  Status status = CheckOrUpdateGolden(result, golden, /*update=*/false,
                                      &message);
  EXPECT_FALSE(status.ok());

  ASSERT_TRUE(
      CheckOrUpdateGolden(result, golden, /*update=*/true, &message).ok());
  EXPECT_TRUE(fs::exists(fs::path(golden) / "synthetic.report.txt"));

  ASSERT_TRUE(
      CheckOrUpdateGolden(result, golden, /*update=*/false, &message).ok());

  // Any byte of drift fails the gate and names the scenario.
  std::ofstream(fs::path(golden) / "synthetic.report.txt", std::ios::app)
      << "tampered\n";
  message.clear();
  status = CheckOrUpdateGolden(result, golden, /*update=*/false, &message);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(message.find("synthetic: report drifted"), std::string::npos);
}

// ---------------------------------------------------------- end to end --

TEST(CampaignEndToEndTest, MiniScenarioScoresAndStaysDeterministic) {
  const Result<Scenario> scenario = ParseScenario(kMiniScenario);
  ASSERT_TRUE(scenario.ok()) << scenario.status().message();

  CampaignOptions serial;
  serial.threads = 1;
  const Result<CampaignResult> first =
      RunCampaign({scenario.value()}, serial);
  ASSERT_TRUE(first.ok()) << first.status().message();
  const ScenarioScore& score = first.value().scores[0];
  EXPECT_EQ(score.test_runs, 2);
  EXPECT_EQ(static_cast<int>(score.runs.size()), 2);
  EXPECT_GE(score.precision_at_1, 0.0);
  EXPECT_LE(score.precision_at_1, 1.0);
  EXPECT_GE(score.recall, score.precision_at_1);
  EXPECT_GE(score.precision_at_k, score.precision_at_1);
  // The injected CPU hog must at least trip the detector.
  EXPECT_GT(score.detected, 0);

  // The whole scoreboard - not just the means - is byte-identical when the
  // same campaign runs on eight threads, and when it simply runs again.
  CampaignOptions wide;
  wide.threads = 8;
  const Result<CampaignResult> parallel =
      RunCampaign({scenario.value()}, wide);
  ASSERT_TRUE(parallel.ok()) << parallel.status().message();
  const Result<CampaignResult> again = RunCampaign({scenario.value()}, wide);
  ASSERT_TRUE(again.ok()) << again.status().message();
  EXPECT_EQ(RenderJson(first.value()), RenderJson(parallel.value()));
  EXPECT_EQ(RenderCsv(first.value()), RenderCsv(parallel.value()));
  EXPECT_EQ(RenderJson(parallel.value()), RenderJson(again.value()));
  EXPECT_EQ(RenderScenarioReport(first.value().scores[0]),
            RenderScenarioReport(parallel.value().scores[0]));
}

TEST(CampaignEndToEndTest, HoldOutScenarioScoresCausalEngineDeterministically) {
  const Result<Scenario> scenario = ParseScenario(kMiniHoldOutScenario);
  ASSERT_TRUE(scenario.ok()) << scenario.status().message();
  ASSERT_TRUE(scenario.value().hold_out);

  CampaignOptions serial;
  serial.threads = 1;
  const Result<CampaignResult> first =
      RunCampaign({scenario.value()}, serial);
  ASSERT_TRUE(first.ok()) << first.status().message();
  const ScenarioScore& score = first.value().scores[0];
  EXPECT_TRUE(score.hold_out);
  EXPECT_EQ(score.expected_metrics,
            DefaultCulpritMetrics(faults::FaultType::kCpuHog));

  // The signature engine cannot name a fault it never learned...
  EXPECT_EQ(score.top1_correct, 0);
  EXPECT_DOUBLE_EQ(score.precision_at_1, 0.0);
  // ...but every detected run still gets a causal suspect ranking.
  EXPECT_GT(score.detected, 0);
  for (const RunOutcome& run : score.runs) {
    if (!run.detected || run.num_violations == 0) continue;
    EXPECT_FALSE(run.suspects.empty());
    EXPECT_GE(run.causal_rank, 0);
  }
  EXPECT_GE(score.causal_recall_at_3, 0.0);
  EXPECT_LE(score.causal_recall_at_3, 1.0);
  // Hold-out scenarios feed the unknown-fault gate, not the known-fault one.
  EXPECT_EQ(first.value().known_scenarios, 0);
  EXPECT_EQ(first.value().holdout_scenarios, 1);
  EXPECT_DOUBLE_EQ(first.value().mean_causal_recall_at_3,
                   score.causal_recall_at_3);

  // Suspect rankings - scores included, rendered to full precision - are
  // byte-identical when the campaign runs on eight threads.
  CampaignOptions wide;
  wide.threads = 8;
  const Result<CampaignResult> parallel =
      RunCampaign({scenario.value()}, wide);
  ASSERT_TRUE(parallel.ok()) << parallel.status().message();
  EXPECT_EQ(RenderJson(first.value()), RenderJson(parallel.value()));
  EXPECT_EQ(RenderCsv(first.value()), RenderCsv(parallel.value()));
  EXPECT_EQ(RenderScenarioReport(first.value().scores[0]),
            RenderScenarioReport(parallel.value().scores[0]));
}

TEST(CampaignEndToEndTest, BundledScenarioFilesParse) {
  // The shipped campaign must always load; running it is the CI smoke
  // step's job, parsing it is ours.
  const fs::path dir = fs::path(INVARNETX_SOURCE_DIR) / "examples/scenarios";
  Result<std::vector<Scenario>> loaded = LoadScenarioDirectory(dir.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_GE(loaded.value().size(), 10u);
  for (const Scenario& s : loaded.value()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_GE(s.normal_runs, 2);
  }
}

}  // namespace
}  // namespace invarnetx::campaign
