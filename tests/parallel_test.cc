#include "common/parallel.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace invarnetx {
namespace {

TEST(EffectiveThreadCountTest, ResolvesRequests) {
  EXPECT_GE(EffectiveThreadCount(0), 1);
  EXPECT_GE(EffectiveThreadCount(-3), 1);
  EXPECT_EQ(EffectiveThreadCount(1), 1);
  EXPECT_EQ(EffectiveThreadCount(7), 7);
  EXPECT_EQ(EffectiveThreadCount(kMaxThreads + 50), kMaxThreads);
}

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    const size_t n = 1000;
    std::vector<std::atomic<int>> counts(n);
    Status status = ParallelFor(n, threads, [&](size_t i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    });
    ASSERT_TRUE(status.ok()) << status.ToString();
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads";
    }
  }
}

TEST(ParallelForTest, EmptyRangeIsOk) {
  bool ran = false;
  Status status = ParallelFor(0, 8, [&](size_t) {
    ran = true;
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, ReturnsLowestFailingIndexError) {
  // Indices 100, 250 and 900 fail; every thread count must report index
  // 100's message, matching the serial loop's first error.
  for (int threads : {1, 2, 8}) {
    Status status = ParallelFor(1000, threads, [&](size_t i) -> Status {
      if (i == 100 || i == 250 || i == 900) {
        return Status::Internal("index " + std::to_string(i));
      }
      return Status::Ok();
    });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_NE(status.ToString().find("index 100"), std::string::npos)
        << status.ToString() << " with " << threads << " threads";
  }
}

TEST(ParallelForTest, NestedCallsComplete) {
  // Inner ParallelFor calls run from worker context; caller participation
  // means they can never starve waiting on pool slots.
  std::atomic<int> total{0};
  Status status = ParallelFor(8, 4, [&](size_t) {
    return ParallelFor(8, 4, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    });
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelForTest, ManyMoreTasksThanWorkers) {
  std::atomic<int64_t> sum{0};
  Status status = ParallelFor(10000, 3, [&](size_t i) {
    sum.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed);
    return Status::Ok();
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(sum.load(), int64_t{10000} * 9999 / 2);
}

TEST(ThreadPoolTest, GrowsOnDemandAndRunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2);
  pool.EnsureSize(5);
  EXPECT_EQ(pool.size(), 5);
  pool.EnsureSize(3);  // never shrinks
  EXPECT_EQ(pool.size(), 5);

  // Submitted tasks all run; ParallelFor over the shared pool alongside
  // direct submissions must not interfere.
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  Status status =
      ParallelFor(100, 4, [&](size_t) { return Status::Ok(); });
  EXPECT_TRUE(status.ok());
  // The pool destructor drains pending tasks before joining, so all 20
  // submissions complete by the end of this scope; spin briefly first so
  // the assertion does not rely on destructor ordering.
  for (int spin = 0; spin < 10000 && done.load() < 20; ++spin) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace invarnetx
