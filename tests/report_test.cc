#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/cluster_diagnosis.h"
#include "core/evaluate.h"
#include "core/report.h"

namespace invarnetx::core {
namespace {

using workload::WorkloadType;

class ReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new InvarNetX();
    auto normal = SimulateNormalRuns(WorkloadType::kWordCount, 8, 42);
    for (size_t node = 1; node <= 4; ++node) {
      const OperationContext context{
          WorkloadType::kWordCount, "10.0.0." + std::to_string(node + 1)};
      ASSERT_TRUE(
          pipeline_->TrainContext(context, normal.value(), node).ok());
    }
    const OperationContext victim{WorkloadType::kWordCount, "10.0.0.2"};
    for (uint64_t rep = 0; rep < 2; ++rep) {
      auto hog = SimulateFaultRun(WorkloadType::kWordCount,
                                  faults::FaultType::kMemHog, 700 + rep);
      ASSERT_TRUE(
          pipeline_->AddSignature(victim, "mem-hog", hog.value(), 1).ok());
      auto net = SimulateFaultRun(WorkloadType::kWordCount,
                                  faults::FaultType::kNetDrop, 800 + rep);
      ASSERT_TRUE(
          pipeline_->AddSignature(victim, "net-drop", net.value(), 1).ok());
      auto delay = SimulateFaultRun(WorkloadType::kWordCount,
                                    faults::FaultType::kNetDelay, 810 + rep);
      ASSERT_TRUE(
          pipeline_->AddSignature(victim, "net-delay", delay.value(), 1)
              .ok());
    }
  }
  static void TearDownTestSuite() { delete pipeline_; }

  static InvarNetX* pipeline_;
};

InvarNetX* ReportTest::pipeline_ = nullptr;

TEST_F(ReportTest, AnomalousRunRendersFullReport) {
  const OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  auto run = SimulateFaultRun(WorkloadType::kWordCount,
                              faults::FaultType::kMemHog, 999);
  const DiagnosisReport report =
      pipeline_->Diagnose(context, run.value(), 1).value();
  ASSERT_TRUE(report.anomaly_detected);
  const std::string markdown = RenderIncidentReport(
      context, report, *pipeline_->GetContext(context).value(),
      run.value().ticks);
  EXPECT_NE(markdown.find("# Incident report - wordcount@10.0.0.2"),
            std::string::npos);
  EXPECT_NE(markdown.find("Anomaly detected"), std::string::npos);
  EXPECT_NE(markdown.find("Ranked causes"), std::string::npos);
  EXPECT_NE(markdown.find("mem-hog"), std::string::npos);
  EXPECT_NE(markdown.find("metric family"), std::string::npos);
  EXPECT_NE(markdown.find("memory"), std::string::npos);
}

TEST_F(ReportTest, CleanRunSaysSo) {
  const OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  DiagnosisReport quiet;  // default: no anomaly
  const std::string markdown = RenderIncidentReport(
      context, quiet, *pipeline_->GetContext(context).value(), 50);
  EXPECT_NE(markdown.find("No performance anomaly detected"),
            std::string::npos);
  EXPECT_EQ(markdown.find("Ranked causes"), std::string::npos);
}

TEST_F(ReportTest, ConflictWarningAppearsForConflictedTopCause) {
  // Net faults are the designed conflict pair; a net-drop incident's report
  // must warn about the net-delay neighbour when they collide.
  const OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  const std::shared_ptr<const ContextModel> model_ptr =
      pipeline_->GetContext(context).value();
  const ContextModel& model = *model_ptr;
  auto conflicts = model.sigdb.FindConflicts(0.55);
  ASSERT_TRUE(conflicts.ok());
  bool net_pair = false;
  for (const auto& c : conflicts.value()) {
    net_pair |= c.problem_a == "net-delay" && c.problem_b == "net-drop";
  }
  if (!net_pair) GTEST_SKIP() << "no net conflict at this seed";
  auto run = SimulateFaultRun(WorkloadType::kWordCount,
                              faults::FaultType::kNetDrop, 998);
  const DiagnosisReport report =
      pipeline_->Diagnose(context, run.value(), 1).value();
  if (!report.anomaly_detected || report.causes.empty() ||
      (report.causes[0].problem != "net-drop" &&
       report.causes[0].problem != "net-delay")) {
    GTEST_SKIP() << "net fault not top-ranked at this seed";
  }
  const std::string markdown =
      RenderIncidentReport(context, report, model, run.value().ticks);
  EXPECT_NE(markdown.find("Signature conflicts"), std::string::npos);
}

TEST_F(ReportTest, ClusterReportNamesCulprit) {
  auto run = SimulateFaultRun(WorkloadType::kWordCount,
                              faults::FaultType::kMemHog, 997);
  const ClusterDiagnosis scan =
      DiagnoseCluster(*pipeline_, run.value()).value();
  ASSERT_TRUE(scan.AnyAnomaly());
  const std::string markdown = RenderClusterReport(
      *pipeline_, scan, WorkloadType::kWordCount, run.value().ticks);
  EXPECT_NE(markdown.find("# Cluster scan"), std::string::npos);
  EXPECT_NE(markdown.find("Culprit: **10.0.0.2**"), std::string::npos);
  EXPECT_NE(markdown.find("healthy"), std::string::npos);
  EXPECT_NE(markdown.find("# Incident report"), std::string::npos);
}

// The cost block renders only when the diagnosis actually carried timings,
// so the synthetic reports elsewhere in this suite stay clean.
TEST_F(ReportTest, CostBlockRenderedOnlyWhenMeasured) {
  const OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  auto run = SimulateFaultRun(WorkloadType::kWordCount,
                              faults::FaultType::kMemHog, 999);
  const DiagnosisReport report =
      pipeline_->Diagnose(context, run.value(), 1).value();
  ASSERT_GT(report.cost.total_seconds, 0.0);
  const std::string markdown = RenderIncidentReport(
      context, report, *pipeline_->GetContext(context).value(),
      run.value().ticks);
  EXPECT_NE(markdown.find("## Diagnosis cost"), std::string::npos);
  EXPECT_NE(markdown.find("total_s="), std::string::npos);

  DiagnosisReport unmeasured = report;
  unmeasured.cost = DiagnosisCost();
  const std::string quiet = RenderIncidentReport(
      context, unmeasured, *pipeline_->GetContext(context).value(),
      run.value().ticks);
  EXPECT_EQ(quiet.find("## Diagnosis cost"), std::string::npos);
}

// Byte-for-byte golden of the incident-report rendering, fed a fully
// synthetic diagnosis so the bytes depend only on the renderer. Regenerate
// with INVARNETX_UPDATE_GOLDEN=1 after an intentional format change.
TEST(ReportGoldenTest, IncidentReportMatchesGoldenBytes) {
  const OperationContext context{WorkloadType::kGrep, "10.0.0.4"};
  DiagnosisReport report;
  report.anomaly_detected = true;
  report.first_alarm_tick = 12;
  report.num_violations = 7;
  report.causes.push_back(RankedCause{"disk-hog", 0.625});
  report.causes.push_back(RankedCause{"suspend", 0.25});
  report.known_problem = false;
  report.hints = {"disk_util_pct ~ cpu_iowait_pct",
                  "disk_read_kbps ~ load_avg_1m"};
  report.cost.detect_seconds = 0.001;
  report.cost.matrix_seconds = 0.0625;
  report.cost.infer_seconds = 0.0005;
  report.cost.total_seconds = 0.064;
  report.cost.cache_hits = 300;
  report.cost.cache_misses = 25;
  const ContextModel model;  // empty: no mined state leaks into the bytes
  const std::string markdown =
      RenderIncidentReport(context, report, model, 50);

  const std::string golden_path =
      (std::filesystem::path(INVARNETX_SOURCE_DIR) / "tests" / "golden" /
       "incident_report.md")
          .string();
  const char* update = std::getenv("INVARNETX_UPDATE_GOLDEN");
  if (update != nullptr && std::string(update) != "0") {
    std::ofstream(golden_path, std::ios::binary) << markdown;
    GTEST_SKIP() << "updated " << golden_path;
  }
  std::ifstream file(golden_path, std::ios::binary);
  ASSERT_TRUE(file.good())
      << golden_path << " missing; regenerate with INVARNETX_UPDATE_GOLDEN=1";
  std::ostringstream stored;
  stored << file.rdbuf();
  EXPECT_EQ(markdown, stored.str())
      << "incident report rendering drifted; regenerate the golden with "
         "INVARNETX_UPDATE_GOLDEN=1 if the change is intended";
}

TEST_F(ReportTest, ClusterReportQuietWhenHealthy) {
  auto clean = SimulateNormalRuns(WorkloadType::kWordCount, 1, 555);
  const ClusterDiagnosis scan =
      DiagnoseCluster(*pipeline_, clean.value()[0]).value();
  const std::string markdown = RenderClusterReport(
      *pipeline_, scan, WorkloadType::kWordCount, clean.value()[0].ticks);
  EXPECT_NE(markdown.find("No node raised an alarm"), std::string::npos);
}

}  // namespace
}  // namespace invarnetx::core
