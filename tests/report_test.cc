#include <string>

#include <gtest/gtest.h>

#include "core/cluster_diagnosis.h"
#include "core/evaluate.h"
#include "core/report.h"

namespace invarnetx::core {
namespace {

using workload::WorkloadType;

class ReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new InvarNetX();
    auto normal = SimulateNormalRuns(WorkloadType::kWordCount, 8, 42);
    for (size_t node = 1; node <= 4; ++node) {
      const OperationContext context{
          WorkloadType::kWordCount, "10.0.0." + std::to_string(node + 1)};
      ASSERT_TRUE(
          pipeline_->TrainContext(context, normal.value(), node).ok());
    }
    const OperationContext victim{WorkloadType::kWordCount, "10.0.0.2"};
    for (uint64_t rep = 0; rep < 2; ++rep) {
      auto hog = SimulateFaultRun(WorkloadType::kWordCount,
                                  faults::FaultType::kMemHog, 700 + rep);
      ASSERT_TRUE(
          pipeline_->AddSignature(victim, "mem-hog", hog.value(), 1).ok());
      auto net = SimulateFaultRun(WorkloadType::kWordCount,
                                  faults::FaultType::kNetDrop, 800 + rep);
      ASSERT_TRUE(
          pipeline_->AddSignature(victim, "net-drop", net.value(), 1).ok());
      auto delay = SimulateFaultRun(WorkloadType::kWordCount,
                                    faults::FaultType::kNetDelay, 810 + rep);
      ASSERT_TRUE(
          pipeline_->AddSignature(victim, "net-delay", delay.value(), 1)
              .ok());
    }
  }
  static void TearDownTestSuite() { delete pipeline_; }

  static InvarNetX* pipeline_;
};

InvarNetX* ReportTest::pipeline_ = nullptr;

TEST_F(ReportTest, AnomalousRunRendersFullReport) {
  const OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  auto run = SimulateFaultRun(WorkloadType::kWordCount,
                              faults::FaultType::kMemHog, 999);
  const DiagnosisReport report =
      pipeline_->Diagnose(context, run.value(), 1).value();
  ASSERT_TRUE(report.anomaly_detected);
  const std::string markdown = RenderIncidentReport(
      context, report, *pipeline_->GetContext(context).value(),
      run.value().ticks);
  EXPECT_NE(markdown.find("# Incident report - wordcount@10.0.0.2"),
            std::string::npos);
  EXPECT_NE(markdown.find("Anomaly detected"), std::string::npos);
  EXPECT_NE(markdown.find("Ranked causes"), std::string::npos);
  EXPECT_NE(markdown.find("mem-hog"), std::string::npos);
  EXPECT_NE(markdown.find("metric family"), std::string::npos);
  EXPECT_NE(markdown.find("memory"), std::string::npos);
}

TEST_F(ReportTest, CleanRunSaysSo) {
  const OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  DiagnosisReport quiet;  // default: no anomaly
  const std::string markdown = RenderIncidentReport(
      context, quiet, *pipeline_->GetContext(context).value(), 50);
  EXPECT_NE(markdown.find("No performance anomaly detected"),
            std::string::npos);
  EXPECT_EQ(markdown.find("Ranked causes"), std::string::npos);
}

TEST_F(ReportTest, ConflictWarningAppearsForConflictedTopCause) {
  // Net faults are the designed conflict pair; a net-drop incident's report
  // must warn about the net-delay neighbour when they collide.
  const OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  const ContextModel& model = *pipeline_->GetContext(context).value();
  auto conflicts = model.sigdb.FindConflicts(0.55);
  ASSERT_TRUE(conflicts.ok());
  bool net_pair = false;
  for (const auto& c : conflicts.value()) {
    net_pair |= c.problem_a == "net-delay" && c.problem_b == "net-drop";
  }
  if (!net_pair) GTEST_SKIP() << "no net conflict at this seed";
  auto run = SimulateFaultRun(WorkloadType::kWordCount,
                              faults::FaultType::kNetDrop, 998);
  const DiagnosisReport report =
      pipeline_->Diagnose(context, run.value(), 1).value();
  if (!report.anomaly_detected || report.causes.empty() ||
      (report.causes[0].problem != "net-drop" &&
       report.causes[0].problem != "net-delay")) {
    GTEST_SKIP() << "net fault not top-ranked at this seed";
  }
  const std::string markdown =
      RenderIncidentReport(context, report, model, run.value().ticks);
  EXPECT_NE(markdown.find("Signature conflicts"), std::string::npos);
}

TEST_F(ReportTest, ClusterReportNamesCulprit) {
  auto run = SimulateFaultRun(WorkloadType::kWordCount,
                              faults::FaultType::kMemHog, 997);
  const ClusterDiagnosis scan =
      DiagnoseCluster(*pipeline_, run.value()).value();
  ASSERT_TRUE(scan.AnyAnomaly());
  const std::string markdown = RenderClusterReport(
      *pipeline_, scan, WorkloadType::kWordCount, run.value().ticks);
  EXPECT_NE(markdown.find("# Cluster scan"), std::string::npos);
  EXPECT_NE(markdown.find("Culprit: **10.0.0.2**"), std::string::npos);
  EXPECT_NE(markdown.find("healthy"), std::string::npos);
  EXPECT_NE(markdown.find("# Incident report"), std::string::npos);
}

TEST_F(ReportTest, ClusterReportQuietWhenHealthy) {
  auto clean = SimulateNormalRuns(WorkloadType::kWordCount, 1, 555);
  const ClusterDiagnosis scan =
      DiagnoseCluster(*pipeline_, clean.value()[0]).value();
  const std::string markdown = RenderClusterReport(
      *pipeline_, scan, WorkloadType::kWordCount, clean.value()[0].ticks);
  EXPECT_NE(markdown.find("No node raised an alarm"), std::string::npos);
}

}  // namespace
}  // namespace invarnetx::core
