// End-to-end scenarios across the whole stack: simulator -> telemetry ->
// offline training -> online detection -> cause inference.

#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "core/pipeline.h"

namespace invarnetx {
namespace {

using core::DiagnosisReport;
using core::InvarNetX;
using core::OperationContext;
using workload::WorkloadType;

constexpr size_t kVictim = 1;

class IntegrationTest : public ::testing::Test {
 protected:
  // One fully trained pipeline shared by the scenarios (built once).
  static void SetUpTestSuite() {
    pipeline_ = new InvarNetX();
    context_ = new OperationContext{WorkloadType::kWordCount, "10.0.0.2"};
    auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 10, 42);
    ASSERT_TRUE(normal.ok());
    ASSERT_TRUE(
        pipeline_->TrainContext(*context_, normal.value(), kVictim).ok());
    uint64_t fault_index = 0;
    for (faults::FaultType fault : faults::AllFaults()) {
      if (!faults::AppliesTo(fault, WorkloadType::kWordCount)) continue;
      for (uint64_t rep = 0; rep < 2; ++rep) {
        auto run = core::SimulateFaultRun(WorkloadType::kWordCount, fault,
                                          42 + 0x20000 + fault_index * 1000 +
                                              rep);
        ASSERT_TRUE(pipeline_
                        ->AddSignature(*context_, faults::FaultName(fault),
                                       run.value(), kVictim)
                        .ok());
      }
      ++fault_index;
    }
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete context_;
  }

  DiagnosisReport Diagnose(faults::FaultType fault, uint64_t seed) {
    auto run = core::SimulateFaultRun(WorkloadType::kWordCount, fault, seed);
    return pipeline_->Diagnose(*context_, run.value(), kVictim).value();
  }

  static InvarNetX* pipeline_;
  static OperationContext* context_;
};

InvarNetX* IntegrationTest::pipeline_ = nullptr;
OperationContext* IntegrationTest::context_ = nullptr;

TEST_F(IntegrationTest, EveryFaultTypeTripsTheAlarm) {
  for (faults::FaultType fault : faults::AllFaults()) {
    if (!faults::AppliesTo(fault, WorkloadType::kWordCount)) continue;
    int detected = 0;
    for (uint64_t seed = 0; seed < 3; ++seed) {
      if (Diagnose(fault, 5000 + seed).anomaly_detected) ++detected;
    }
    EXPECT_GE(detected, 2) << faults::FaultName(fault);
  }
}

TEST_F(IntegrationTest, DistinctiveFaultsDiagnosedTopOne) {
  // The faults the paper finds easiest must be diagnosed correctly in the
  // majority of runs.
  for (faults::FaultType fault :
       {faults::FaultType::kCpuHog, faults::FaultType::kMemHog,
        faults::FaultType::kSuspend}) {
    int top2 = 0;
    for (uint64_t seed = 0; seed < 5; ++seed) {
      const DiagnosisReport report = Diagnose(fault, 6000 + seed * 13);
      if (!report.anomaly_detected) continue;
      for (size_t k = 0; k < report.causes.size() && k < 2; ++k) {
        if (report.causes[k].problem == faults::FaultName(fault)) {
          ++top2;
          break;
        }
      }
    }
    EXPECT_GE(top2, 4) << faults::FaultName(fault);
  }
}

TEST_F(IntegrationTest, NetDropAndDelayShareSignatureNeighborhood) {
  // The paper's signature conflict: whichever of the two wins, the other
  // must rank in the top candidates.
  const DiagnosisReport report = Diagnose(faults::FaultType::kNetDrop, 7100);
  ASSERT_TRUE(report.anomaly_detected);
  bool drop_seen = false, delay_seen = false;
  for (size_t i = 0; i < report.causes.size() && i < 3; ++i) {
    drop_seen |= report.causes[i].problem == "net-drop";
    delay_seen |= report.causes[i].problem == "net-delay";
  }
  EXPECT_TRUE(drop_seen);
  EXPECT_TRUE(delay_seen);
}

TEST_F(IntegrationTest, CleanRunsStayQuietAcrossSeeds) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    auto clean =
        core::SimulateNormalRuns(WorkloadType::kWordCount, 1, 8000 + seed);
    const DiagnosisReport report =
        pipeline_->Diagnose(*context_, clean.value()[0], kVictim).value();
    EXPECT_FALSE(report.anomaly_detected) << "seed " << seed;
  }
}

TEST_F(IntegrationTest, SuspendProducesManyViolations) {
  // Suspension freezes the Hadoop processes: a substantial slice of the
  // invariant network must break, every time.
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const DiagnosisReport report =
        Diagnose(faults::FaultType::kSuspend, 9100 + seed);
    ASSERT_TRUE(report.anomaly_detected) << seed;
    EXPECT_GT(report.num_violations, 10) << seed;
  }
}

TEST_F(IntegrationTest, CpuUtilNoiseIsNotAnAnomaly) {
  // The Fig. 2 scenario end-to-end: a pure utilization disturbance must
  // not trigger diagnosis.
  telemetry::RunConfig config;
  config.workload = WorkloadType::kWordCount;
  config.seed = 9200;
  faults::FaultWindow window;
  window.start_tick = 10;
  window.duration_ticks = 30;
  window.target_node = 1;
  config.fault =
      telemetry::FaultRequest{faults::FaultType::kCpuUtilNoise, window};
  auto run = telemetry::SimulateRun(config);
  const DiagnosisReport report =
      pipeline_->Diagnose(*context_, run.value(), kVictim).value();
  EXPECT_FALSE(report.anomaly_detected);
}

TEST(InteractiveIntegrationTest, TpcDsPipelineEndToEnd) {
  InvarNetX pipeline;
  const OperationContext context{WorkloadType::kTpcDs, "10.0.0.2"};
  core::EvalConfig defaults;
  auto normal = core::SimulateNormalRuns(WorkloadType::kTpcDs, 8, 42,
                                         defaults.interactive_train_ticks);
  ASSERT_TRUE(normal.ok());
  ASSERT_TRUE(pipeline.TrainContext(context, normal.value(), kVictim).ok());
  for (int rep = 0; rep < 2; ++rep) {
    auto run = core::SimulateFaultRun(WorkloadType::kTpcDs,
                                      faults::FaultType::kOverload,
                                      500 + static_cast<uint64_t>(rep));
    ASSERT_TRUE(
        pipeline.AddSignature(context, "overload", run.value(), kVictim)
            .ok());
  }
  auto incident = core::SimulateFaultRun(WorkloadType::kTpcDs,
                                         faults::FaultType::kOverload, 900);
  const DiagnosisReport report =
      pipeline.Diagnose(context, incident.value(), kVictim).value();
  EXPECT_TRUE(report.anomaly_detected);
  ASSERT_FALSE(report.causes.empty());
  EXPECT_EQ(report.causes[0].problem, "overload");
}

}  // namespace
}  // namespace invarnetx
