#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "common/random.h"
#include "mic/mic.h"
#include "mic/simd.h"

// ----------------------------------------------- allocation counting hook --
// This binary replaces the global allocation functions with counting
// delegates to malloc/free, so tests can assert that a warm MicWorkspace
// makes the kernel allocation-free in steady state. Only operator new is
// counted; deallocation stays untracked (frees need no counting).

namespace {
std::atomic<uint64_t> g_heap_allocations{0};

uint64_t HeapAllocations() {
  return g_heap_allocations.load(std::memory_order_relaxed);
}

void* CountedAlloc(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size ? size : 1) != 0) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace invarnetx::mic {
namespace {

std::vector<double> Linspace(int n) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(static_cast<double>(i) / n);
  return out;
}

// ---------------------------------------------------------- public Mic() --

TEST(MicTest, RejectsBadInput) {
  EXPECT_FALSE(Mic({1, 2, 3}, {1, 2}).ok());
  EXPECT_FALSE(Mic({1, 2, 3}, {1, 2, 3}).ok());  // < 4 points
  MicOptions bad_alpha;
  bad_alpha.alpha = 0.0;
  EXPECT_FALSE(Mic({1, 2, 3, 4}, {1, 2, 3, 4}, bad_alpha).ok());
  MicOptions bad_clump;
  bad_clump.clump_factor = 0;
  EXPECT_FALSE(Mic({1, 2, 3, 4}, {1, 2, 3, 4}, bad_clump).ok());
}

TEST(MicTest, PerfectLinearRelationshipScoresOne) {
  std::vector<double> x = Linspace(200);
  std::vector<double> y;
  for (double v : x) y.push_back(3.0 * v + 1.0);
  Result<MicResult> r = Mic(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().mic, 0.95);
}

TEST(MicTest, PerfectNonlinearRelationshipsScoreHigh) {
  std::vector<double> x = Linspace(200);
  std::vector<double> parabola, sine, expy;
  for (double v : x) {
    parabola.push_back((v - 0.5) * (v - 0.5));  // non-monotone
    sine.push_back(std::sin(8.0 * v));
    expy.push_back(std::exp(3.0 * v));
  }
  EXPECT_GT(MicScore(x, parabola).value(), 0.8);
  EXPECT_GT(MicScore(x, sine).value(), 0.7);
  EXPECT_GT(MicScore(x, expy).value(), 0.95);
}

TEST(MicTest, IndependentNoiseScoresLow) {
  Rng rng(41);
  std::vector<double> x, y;
  for (int i = 0; i < 400; ++i) {
    x.push_back(rng.Gaussian(0, 1));
    y.push_back(rng.Gaussian(0, 1));
  }
  Result<double> score = MicScore(x, y);
  ASSERT_TRUE(score.ok());
  EXPECT_LT(score.value(), 0.35);
}

TEST(MicTest, SymmetricInArguments) {
  Rng rng(42);
  std::vector<double> x, y;
  for (int i = 0; i < 150; ++i) {
    const double v = rng.Uniform();
    x.push_back(v);
    y.push_back(v * v + rng.Gaussian(0, 0.05));
  }
  const double xy = MicScore(x, y).value();
  const double yx = MicScore(y, x).value();
  EXPECT_DOUBLE_EQ(xy, yx);
}

TEST(MicTest, DeterministicAcrossCalls) {
  Rng rng(43);
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(rng.Uniform());
    y.push_back(rng.Uniform());
  }
  EXPECT_DOUBLE_EQ(MicScore(x, y).value(), MicScore(x, y).value());
}

TEST(MicTest, ScoreWithinUnitInterval) {
  Rng rng(44);
  for (int round = 0; round < 10; ++round) {
    std::vector<double> x, y;
    for (int i = 0; i < 60; ++i) {
      x.push_back(rng.Gaussian(0, 1));
      y.push_back(0.5 * x.back() + rng.Gaussian(0, 0.5));
    }
    const double s = MicScore(x, y).value();
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(MicTest, NoiseDegradesScoreMonotonically) {
  Rng rng(45);
  std::vector<double> x = Linspace(300);
  double prev = 1.1;
  for (double noise : {0.0, 0.3, 1.0, 3.0}) {
    std::vector<double> y;
    for (double v : x) y.push_back(v + rng.Gaussian(0, noise));
    const double s = MicScore(x, y).value();
    EXPECT_LT(s, prev + 0.12);  // allow small non-monotone wiggle
    prev = s;
  }
  EXPECT_LT(prev, 0.5);  // heavy noise ends low
}

TEST(MicTest, ConstantSeriesScoresZero) {
  std::vector<double> x = Linspace(50);
  std::vector<double> y(50, 2.0);
  Result<MicResult> r = Mic(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.value().mic, 1e-9);
}

TEST(MicTest, TiesHandled) {
  // Heavily tied data (integers mod 3) with an exact functional relation.
  std::vector<double> x, y;
  for (int i = 0; i < 120; ++i) {
    x.push_back(i % 3);
    y.push_back(2.0 * (i % 3));
  }
  Result<double> s = MicScore(x, y);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s.value(), 0.9);
}

TEST(MicTest, ReportsMaximizingGrid) {
  std::vector<double> x = Linspace(100);
  std::vector<double> y = x;
  Result<MicResult> r = Mic(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value().best_x, 2);
  EXPECT_GE(r.value().best_y, 2);
}

// ------------------------------------------------ companion MINE stats ---

TEST(MineStatsTest, LinearRelationship) {
  std::vector<double> x = Linspace(200);
  Result<MicResult> r = Mic(x, x);
  ASSERT_TRUE(r.ok());
  // A noiseless line: full-strength functional fit on the smallest grid,
  // no asymmetry.
  EXPECT_GT(r.value().mev, 0.95);
  EXPECT_NEAR(r.value().mcn, 2.0, 1e-9);  // log2(2*2)
  EXPECT_LT(r.value().mas, 0.1);
}

TEST(MineStatsTest, MevNeverExceedsMic) {
  Rng rng(51);
  for (int round = 0; round < 10; ++round) {
    std::vector<double> x, y;
    for (int i = 0; i < 80; ++i) {
      x.push_back(rng.Gaussian(0, 1));
      y.push_back(0.5 * x.back() * x.back() + rng.Gaussian(0, 0.3));
    }
    Result<MicResult> r = Mic(x, y);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r.value().mev, r.value().mic + 1e-9);
    EXPECT_GE(r.value().mas, 0.0);
    EXPECT_LE(r.value().mas, 1.0);
    EXPECT_GE(r.value().mcn, 2.0 - 1e-9);
  }
}

TEST(MineStatsTest, ParabolaNeedsMoreCellsThanLine) {
  // A non-monotone function cannot be captured by a 2-column grid: its
  // minimal MIC-achieving grid is strictly larger than the line's.
  std::vector<double> x = Linspace(300);
  std::vector<double> parabola;
  for (double v : x) parabola.push_back((v - 0.5) * (v - 0.5));
  const MicResult line = Mic(x, x).value();
  const MicResult curve = Mic(x, parabola).value();
  EXPECT_GT(curve.mcn, line.mcn);
}

// ------------------------------------------------------------- internals --

TEST(EquipartitionTest, BalancedWithoutTies) {
  std::vector<double> y;
  for (int i = 0; i < 12; ++i) y.push_back(i);
  internal::YPartition part = internal::EquipartitionY(y, 3);
  EXPECT_EQ(part.num_rows, 3);
  int counts[3] = {0, 0, 0};
  for (int r : part.row_of_point) ++counts[r];
  EXPECT_EQ(counts[0], 4);
  EXPECT_EQ(counts[1], 4);
  EXPECT_EQ(counts[2], 4);
}

TEST(EquipartitionTest, TiesStayTogether) {
  std::vector<double> y = {1, 1, 1, 1, 1, 2, 3, 4};
  internal::YPartition part = internal::EquipartitionY(y, 4);
  // All the 1s must share a row.
  const int row_of_ones = part.row_of_point[0];
  for (int i = 1; i < 5; ++i) EXPECT_EQ(part.row_of_point[i], row_of_ones);
}

TEST(EquipartitionTest, OrderedByValue) {
  std::vector<double> y = {5, 1, 4, 2, 3, 0};
  internal::YPartition part = internal::EquipartitionY(y, 2);
  // Small values in row 0, large in row 1.
  EXPECT_EQ(part.row_of_point[5], 0);  // value 0
  EXPECT_EQ(part.row_of_point[0], 1);  // value 5
}

TEST(ClumpsTest, EqualXForcedTogether) {
  std::vector<double> x = {1, 1, 2, 3};
  std::vector<int> rows = {0, 1, 0, 1};
  internal::ClumpPartition clumps = internal::BuildClumps(x, rows);
  // First clump must contain both x=1 points (heterogeneous rows).
  ASSERT_GE(clumps.boundaries.size(), 2u);
  EXPECT_EQ(clumps.boundaries[0], 0);
  EXPECT_EQ(clumps.boundaries[1], 2);
}

TEST(ClumpsTest, SameRowRunsMerge) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6};
  std::vector<int> rows = {0, 0, 0, 1, 1, 1};
  internal::ClumpPartition clumps = internal::BuildClumps(x, rows);
  // Two clumps: the row-0 run and the row-1 run.
  ASSERT_EQ(clumps.boundaries.size(), 3u);
  EXPECT_EQ(clumps.boundaries[1], 3);
  EXPECT_EQ(clumps.boundaries[2], 6);
}

TEST(SuperclumpsTest, CapsClumpCount) {
  std::vector<int> boundaries;
  for (int i = 0; i <= 100; ++i) boundaries.push_back(i);
  std::vector<int> super = internal::BuildSuperclumps(boundaries, 10);
  EXPECT_LE(super.size(), 12u);  // ~10 superclumps + endpoints slack
  EXPECT_EQ(super.front(), 0);
  EXPECT_EQ(super.back(), 100);
  // Boundaries must be a subset of the originals (strictly increasing).
  for (size_t i = 1; i < super.size(); ++i) {
    EXPECT_GT(super[i], super[i - 1]);
  }
}

TEST(SuperclumpsTest, NoOpWhenUnderCap) {
  std::vector<int> boundaries = {0, 5, 10};
  EXPECT_EQ(internal::BuildSuperclumps(boundaries, 10), boundaries);
}

TEST(SuperclumpsTest, NeverEmitsMoreThanMaxClumps) {
  // Adversarial layouts sweeping clump counts, size skews and caps: the
  // output must respect the cap OptimizeXAxis sizes its DP tables for
  // (at most max_clumps superclumps), stay strictly increasing, and cover
  // [0, n] exactly. Regression for the leftover-points overflow where a
  // max_clumps+1-th superclump could be appended after the cap was reached.
  Rng rng(0xC1A5);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<int> boundaries = {0};
    const int k = 1 + static_cast<int>(rng.UniformInt(40));
    for (int i = 0; i < k; ++i) {
      // Mix tiny clumps with occasional huge ones to stress the
      // desired-size heuristic.
      const int size = rng.Uniform() < 0.2
                           ? 50 + static_cast<int>(rng.UniformInt(200))
                           : 1 + static_cast<int>(rng.UniformInt(4));
      boundaries.push_back(boundaries.back() + size);
    }
    for (int max_clumps = 1; max_clumps <= 12; ++max_clumps) {
      const std::vector<int> super =
          internal::BuildSuperclumps(boundaries, max_clumps);
      const int cap = std::min(k, max_clumps);
      ASSERT_LE(static_cast<int>(super.size()) - 1, cap)
          << "trial " << trial << " max_clumps " << max_clumps;
      ASSERT_GE(super.size(), 2u);
      EXPECT_EQ(super.front(), 0);
      EXPECT_EQ(super.back(), boundaries.back());
      for (size_t i = 1; i < super.size(); ++i) {
        ASSERT_GT(super[i], super[i - 1]);
      }
    }
  }
}

TEST(SuperclumpsTest, ExponentialSkewRespectsCap) {
  // Exponentially growing clump sizes push nearly all mass into the last
  // clump; the desired-size heuristic closes superclumps early, so the
  // trailing clumps must fold into the final superclump, not overflow it.
  std::vector<int> boundaries = {0};
  int size = 1;
  for (int i = 0; i < 16; ++i) {
    boundaries.push_back(boundaries.back() + size);
    size *= 2;
  }
  for (int max_clumps = 1; max_clumps <= 8; ++max_clumps) {
    const std::vector<int> super =
        internal::BuildSuperclumps(boundaries, max_clumps);
    EXPECT_LE(static_cast<int>(super.size()) - 1, max_clumps);
    EXPECT_EQ(super.front(), 0);
    EXPECT_EQ(super.back(), boundaries.back());
  }
}

TEST(RowEntropyTest, UniformMaximal) {
  std::vector<int> rows = {0, 1, 0, 1};
  EXPECT_NEAR(internal::RowEntropy(rows, 2), std::log(2.0), 1e-12);
  std::vector<int> single(4, 0);
  EXPECT_DOUBLE_EQ(internal::RowEntropy(single, 1), 0.0);
}

TEST(OptimizeXAxisTest, PerfectSeparationRecoversFullMi) {
  // 2 clumps, each pure in one of 2 rows: I = H(Q) = ln 2, so the column
  // objective sum must be 0 (= -n H(Q|P) with H(Q|P) = 0).
  std::vector<int> boundaries = {0, 5, 10};
  std::vector<int> rows_in_x(10, 0);
  for (int i = 5; i < 10; ++i) rows_in_x[static_cast<size_t>(i)] = 1;
  std::vector<double> best =
      internal::OptimizeXAxis(boundaries, rows_in_x, 2, 2);
  EXPECT_NEAR(best[1], 0.0, 1e-12);
  // With one column the objective is -n H(Q) = -10 ln 2.
  EXPECT_NEAR(best[0], -10.0 * std::log(2.0), 1e-9);
}

// -------------------------------------------- workspace kernel exactness --

// Field-by-field exact comparison: the workspace kernel must reproduce the
// reference (allocating, map-backed) kernel bit for bit, not approximately.
void ExpectExactlyEqual(const MicResult& got, const MicResult& want,
                        const std::string& label) {
  EXPECT_DOUBLE_EQ(got.mic, want.mic) << label;
  EXPECT_EQ(got.best_x, want.best_x) << label;
  EXPECT_EQ(got.best_y, want.best_y) << label;
  EXPECT_DOUBLE_EQ(got.mev, want.mev) << label;
  EXPECT_DOUBLE_EQ(got.mcn, want.mcn) << label;
  EXPECT_DOUBLE_EQ(got.mas, want.mas) << label;
}

TEST(MicWorkspaceTest, BitIdenticalToReferenceAcrossRandomSeries) {
  // One workspace reused across every call: later inputs see buffers dirtied
  // by earlier ones, which must never leak into results. Covers smooth,
  // heavily tied (quantized), and mixed-length series.
  MicWorkspace workspace;
  Rng rng(0xE4AC7);
  for (int n : {30, 64, 100, 257}) {
    for (int trial = 0; trial < 6; ++trial) {
      std::vector<double> x, y;
      for (int i = 0; i < n; ++i) {
        const double vx = rng.Gaussian(0, 1);
        x.push_back(trial % 3 == 1 ? std::floor(4.0 * vx) / 4.0 : vx);
        const double vy = 0.5 * vx * vx + rng.Gaussian(0, 0.4);
        y.push_back(trial % 3 == 2 ? std::floor(3.0 * vy) / 3.0 : vy);
      }
      const Result<MicResult> fast = Mic(x, y, MicOptions(), &workspace);
      const Result<MicResult> reference = MicReference(x, y);
      ASSERT_TRUE(fast.ok());
      ASSERT_TRUE(reference.ok());
      ExpectExactlyEqual(fast.value(), reference.value(),
                         "n=" + std::to_string(n) + " trial " +
                             std::to_string(trial));
    }
  }
}

TEST(MicWorkspaceTest, DirtyWorkspaceMatchesColdWorkspace) {
  std::vector<double> xa = Linspace(150), ya, xb, yb;
  Rng rng(0xD1127);
  for (double v : xa) ya.push_back(std::sin(6.0 * v));
  for (int i = 0; i < 41; ++i) {
    xb.push_back(rng.Gaussian(0, 1));
    yb.push_back(rng.Uniform());
  }
  MicWorkspace cold;
  const MicResult first = Mic(xa, ya, MicOptions(), &cold).value();
  MicWorkspace dirty;
  ASSERT_TRUE(Mic(xb, yb, MicOptions(), &dirty).ok());  // different shapes
  const MicResult again = Mic(xa, ya, MicOptions(), &dirty).value();
  ExpectExactlyEqual(again, first, "dirty workspace");
}

TEST(MicWorkspaceTest, ZeroSteadyStateAllocations) {
  Rng rng(0x0A110C);
  std::vector<double> x, y, xs, ys;
  for (int i = 0; i < 300; ++i) {
    x.push_back(rng.Gaussian(0, 1));
    y.push_back(0.7 * x.back() + rng.Gaussian(0, 0.5));
  }
  for (int i = 0; i < 120; ++i) {  // shorter series with ties
    xs.push_back(i % 7);
    ys.push_back(rng.Gaussian(0, 1));
  }
  MicWorkspace workspace;
  const Result<MicResult> warm = Mic(x, y, MicOptions(), &workspace);
  ASSERT_TRUE(warm.ok());

  // Warm buffers at the high-water mark: the same call must not touch the
  // heap at all.
  uint64_t before = HeapAllocations();
  const Result<MicResult> repeat = Mic(x, y, MicOptions(), &workspace);
  uint64_t after = HeapAllocations();
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(after - before, 0u) << "warm Mic() allocated";
  ExpectExactlyEqual(repeat.value(), warm.value(), "warm repeat");

  // A shorter series after a longer one fits in the grown buffers.
  ASSERT_TRUE(Mic(xs, ys, MicOptions(), &workspace).ok());  // settle ties path
  before = HeapAllocations();
  const Result<MicResult> shorter = Mic(xs, ys, MicOptions(), &workspace);
  after = HeapAllocations();
  ASSERT_TRUE(shorter.ok());
  EXPECT_EQ(after - before, 0u) << "shorter warm Mic() allocated";
}

// ----------------------------------------------------- SIMD dispatch tiers --

// Runs `body` under every SIMD tier the host supports (always at least the
// scalar tier), restoring the ambient dispatch level afterwards.
template <typename Body>
void ForEachSimdLevel(const Body& body) {
  const SimdLevel ambient = ActiveSimdLevel();
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (DetectSimdLevel() != SimdLevel::kScalar) {
    levels.push_back(DetectSimdLevel());
  }
  for (SimdLevel level : levels) {
    SetSimdLevel(level);
    body(level);
  }
  SetSimdLevel(ambient);
}

TEST(MicSimdTest, EveryTierBitIdenticalToReference) {
  // The vectorized DP reduction must be bit-identical to the scalar one
  // (and both to the allocating reference kernel): the max over
  // dp[s] + col_score[t][s] is order-independent because no candidate is
  // NaN or -0.0, so lane-parallel evaluation cannot change the result.
  MicWorkspace workspace;
  Rng rng(0x51D);
  for (int n : {30, 100, 257}) {
    std::vector<double> x, y;
    for (int i = 0; i < n; ++i) {
      x.push_back(rng.Gaussian(0, 1));
      y.push_back(0.6 * x.back() * x.back() + rng.Gaussian(0, 0.4));
    }
    const Result<MicResult> reference = MicReference(x, y);
    ASSERT_TRUE(reference.ok());
    ForEachSimdLevel([&](SimdLevel level) {
      const Result<MicResult> got = Mic(x, y, MicOptions(), &workspace);
      ASSERT_TRUE(got.ok());
      ExpectExactlyEqual(got.value(), reference.value(),
                         std::string("n=") + std::to_string(n) + " level " +
                             SimdLevelName(level));
    });
  }
}

TEST(MicSimdTest, ZeroSteadyStateAllocationsOnEveryTier) {
  // The dispatch layer must not cost the zero-allocation guarantee.
  Rng rng(0x51D2);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(rng.Gaussian(0, 1));
    y.push_back(0.5 * x.back() + rng.Gaussian(0, 0.5));
  }
  MicWorkspace workspace;
  ASSERT_TRUE(Mic(x, y, MicOptions(), &workspace).ok());  // warm buffers
  ForEachSimdLevel([&](SimdLevel level) {
    ASSERT_TRUE(Mic(x, y, MicOptions(), &workspace).ok());  // settle tier
    const uint64_t before = HeapAllocations();
    const Result<MicResult> warm = Mic(x, y, MicOptions(), &workspace);
    const uint64_t after = HeapAllocations();
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(after - before, 0u)
        << "warm Mic() allocated at level " << SimdLevelName(level);
  });
}

TEST(MicSimdTest, EnvKnobForcesScalar) {
  // DetectSimdLevel honors INVARNETX_SIMD=scalar (read once at startup);
  // whatever it picked, SetSimdLevel can override and the active level
  // round-trips.
  const SimdLevel ambient = ActiveSimdLevel();
  SetSimdLevel(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  SetSimdLevel(ambient);
  EXPECT_EQ(ActiveSimdLevel(), ambient);
  if (const char* env = std::getenv("INVARNETX_SIMD");
      env != nullptr && std::string_view(env) == "scalar") {
    EXPECT_EQ(DetectSimdLevel(), SimdLevel::kScalar);
  }
}

// ------------------------------------------- pinned MINE stats regression --
// Golden values captured from the pre-workspace kernel (the PR 4 seed) on
// fixed series; the rewrite must keep reproducing them. The 1e-9 tolerance
// absorbs libm differences across toolchains; in-process bit-exactness is
// separately enforced against MicReference above.

TEST(MineStatsRegressionTest, PinnedKnownSeries) {
  const int n = 200;
  std::vector<double> x, lin, par, sine, cst;
  for (int i = 0; i < n; ++i) {
    const double v = static_cast<double>(i) / n;
    x.push_back(v);
    lin.push_back(3.0 * v + 1.0);
    par.push_back((v - 0.5) * (v - 0.5));
    sine.push_back(std::sin(8.0 * v));
    cst.push_back(2.0);
  }
  std::vector<double> checker_x, checker_y;  // 2x2 alternating lattice
  for (int i = 0; i < 128; ++i) {
    checker_x.push_back((i % 2) + 0.1 * ((i / 2) % 2));
    checker_y.push_back(((i / 2) % 2) + 0.1 * (i % 2));
  }

  struct Golden {
    const char* name;
    const std::vector<double>* a;
    const std::vector<double>* b;
    double mic, mev, mcn, mas;
    int best_x, best_y;
  };
  const Golden goldens[] = {
      {"linear", &x, &lin, 1.0, 1.0, 2.0, 0.0, 2, 2},
      {"parabola", &x, &par, 0.99997720580681748, 0.99992786404566159,
       3.9068905956085187, 0.68357612758637565, 5, 3},
      {"sine", &x, &sine, 1.0, 1.0, 3.0, 0.66898238364292006, 4, 2},
      {"checkerboard", &checker_x, &checker_y, 1.0, 1.0, 3.0, 0.0, 2, 4},
  };
  for (const Golden& g : goldens) {
    const Result<MicResult> r = Mic(*g.a, *g.b);
    ASSERT_TRUE(r.ok()) << g.name;
    EXPECT_NEAR(r.value().mic, g.mic, 1e-9) << g.name;
    EXPECT_NEAR(r.value().mev, g.mev, 1e-9) << g.name;
    EXPECT_NEAR(r.value().mcn, g.mcn, 1e-9) << g.name;
    EXPECT_NEAR(r.value().mas, g.mas, 1e-9) << g.name;
    EXPECT_EQ(r.value().best_x, g.best_x) << g.name;
    EXPECT_EQ(r.value().best_y, g.best_y) << g.name;
    // And every pinned series must match the reference kernel bit for bit.
    const Result<MicResult> ref = MicReference(*g.a, *g.b);
    ASSERT_TRUE(ref.ok()) << g.name;
    ExpectExactlyEqual(r.value(), ref.value(), g.name);
  }

  // Constant y: every statistic collapses to float residue of the empty /
  // single-row grids (the best grid is residue-dependent, so only the
  // magnitude is pinned).
  const Result<MicResult> flat = Mic(x, cst);
  ASSERT_TRUE(flat.ok());
  EXPECT_LT(flat.value().mic, 1e-12);
  EXPECT_LT(flat.value().mev, 1e-12);
  EXPECT_LT(flat.value().mas, 1e-12);
  EXPECT_NEAR(flat.value().mcn, 2.0, 1e-9);
}

TEST(OptimizeXAxisTest, MonotoneInColumnBudget) {
  Rng rng(46);
  std::vector<int> boundaries;
  boundaries.push_back(0);
  for (int i = 1; i <= 12; ++i) {
    boundaries.push_back(boundaries.back() + 1 +
                         static_cast<int>(rng.UniformInt(3)));
  }
  std::vector<int> rows_in_x;
  for (int i = 0; i < boundaries.back(); ++i) {
    rows_in_x.push_back(static_cast<int>(rng.UniformInt(3)));
  }
  std::vector<double> best =
      internal::OptimizeXAxis(boundaries, rows_in_x, 3, 6);
  for (size_t l = 1; l < best.size(); ++l) {
    EXPECT_GE(best[l], best[l - 1] - 1e-12);
  }
}

}  // namespace
}  // namespace invarnetx::mic
