// Fuzz-style robustness suite for the XML persistence codecs: every
// truncation and byte-level mutation of a valid store document must come
// back as a Status error or a clean parse - never a crash, and never a
// partially-loaded record set. A golden file per store pins the on-disk
// format so accidental serialization drift fails loudly.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "xmlstore/stores.h"
#include "xmlstore/xml.h"

namespace invarnetx::xmlstore {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

void WriteFileRaw(const std::string& path, const std::string& text) {
  std::ofstream file(path, std::ios::binary);
  file << text;
}

// Fixture records exercising the quirky corners of each codec: empty and
// non-empty coefficient vectors, negative and sub-normal-ish doubles, and
// names that need XML escaping.
std::vector<ArimaModelRecord> FixtureModels() {
  ArimaModelRecord a;
  a.p = 2;
  a.d = 1;
  a.q = 1;
  a.ip = "10.0.0.2";
  a.workload = "wordcount";
  a.ar = {0.5, -0.25};
  a.ma = {0.125};
  a.intercept = 1.5;
  a.sigma2 = 0.0625;
  a.residual_min = -3.5;
  a.residual_max = 4.25;
  a.residual_p95 = 2.75;
  ArimaModelRecord b;
  b.ip = "10.0.0.3";
  b.workload = "sort";
  b.intercept = -0.001953125;
  return {a, b};
}

std::vector<InvariantSetRecord> FixtureInvariants() {
  InvariantSetRecord rec;
  rec.ip = "10.0.0.2";
  rec.workload = "grep";
  rec.num_metrics = 4;
  rec.entries = {{0, 1, 0.9375}, {1, 3, 0.5}, {2, 3, 0.75}};
  return {rec};
}

std::vector<SignatureRecord> FixtureSignatures() {
  SignatureRecord rec;
  rec.problem = "net<&>\"drop\"";  // must survive XML escaping
  rec.ip = "10.0.0.1";
  rec.workload = "kmeans";
  rec.bits = {1, 0, 0, 1, 1};
  return {rec};
}

// Loads `path` with each codec and asserts the Result is either ok or a
// clean error - the call itself must not crash, throw, or abort.
void LoadWithEveryCodec(const std::string& path, int* ok_loads) {
  const Result<std::vector<ArimaModelRecord>> models = LoadArimaModels(path);
  const Result<std::vector<InvariantSetRecord>> invariants =
      LoadInvariantSets(path);
  const Result<std::vector<SignatureRecord>> signatures =
      LoadSignatures(path);
  *ok_loads += models.ok() + invariants.ok() + signatures.ok();
}

// ------------------------------------------------------------ truncation --

// Every prefix of a valid document either fails cleanly or (only at full
// length) round-trips completely. There is no in-between: a Load that
// reports ok after truncation would have silently dropped records.
TEST(XmlStoreFuzzTest, TruncatedDocumentsNeverPartiallyLoad) {
  const std::string path = TempPath("invarnetx_fuzz_trunc.xml");
  ASSERT_TRUE(SaveArimaModels(path, FixtureModels()).ok());
  const std::string full = ReadFile(path);
  ASSERT_GT(full.size(), 100u);

  for (size_t len = 0; len < full.size(); ++len) {
    WriteFileRaw(path, full.substr(0, len));
    const Result<std::vector<ArimaModelRecord>> loaded =
        LoadArimaModels(path);
    if (loaded.ok()) {
      // A truncated store must never parse as a smaller-but-valid store.
      ASSERT_EQ(loaded.value().size(), FixtureModels().size())
          << "partial load at prefix length " << len;
    }
  }
  // The untruncated document still loads.
  WriteFileRaw(path, full);
  EXPECT_TRUE(LoadArimaModels(path).ok());
  std::remove(path.c_str());
}

// --------------------------------------------------------- byte mutation --

TEST(XmlStoreFuzzTest, MutatedDocumentsFailCleanly) {
  const std::string path = TempPath("invarnetx_fuzz_mut.xml");
  ASSERT_TRUE(SaveSignatures(path, FixtureSignatures()).ok());
  const std::string full = ReadFile(path);
  ASSERT_FALSE(full.empty());

  Rng rng(2026);
  int ok_loads = 0;
  for (int round = 0; round < 400; ++round) {
    std::string mutated = full;
    // One to three byte edits per round: overwrite, delete, or duplicate.
    const int edits = 1 + static_cast<int>(rng.UniformInt(3));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.UniformInt(mutated.size());
      switch (rng.UniformInt(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.UniformInt(256));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
      if (mutated.empty()) break;
    }
    WriteFileRaw(path, mutated);
    LoadWithEveryCodec(path, &ok_loads);
  }
  // Some mutations (comments, text nodes, unused attributes) legitimately
  // still parse; the point of the sweep is that all 1200 loads returned.
  SUCCEED() << ok_loads << " mutated documents still parsed";
  std::remove(path.c_str());
}

TEST(XmlStoreFuzzTest, GarbageAndWrongSchemaAreErrors) {
  const std::string path = TempPath("invarnetx_fuzz_garbage.xml");
  const char* cases[] = {
      "",
      "not xml at all",
      "<unclosed",
      "<a><b></a></b>",
      "<?xml version=\"1.0\"?>",
      "<models><model p=\"NaNsense\"/></models>",
      "<signatures><signature>01x</signature></signatures>",
  };
  for (const char* text : cases) {
    WriteFileRaw(path, text);
    EXPECT_FALSE(LoadArimaModels(path).ok()) << "case: " << text;
    EXPECT_FALSE(LoadInvariantSets(path).ok()) << "case: " << text;
    EXPECT_FALSE(LoadSignatures(path).ok()) << "case: " << text;
  }
  std::remove(path.c_str());
}

// ----------------------------------------------------------- golden pins --

// One golden file per store. `INVARNETX_UPDATE_GOLDEN=1 ./xmlstore_fuzz_test`
// regenerates them after an intentional format change.
class StoreGoldenTest : public ::testing::Test {
 protected:
  static std::string GoldenPath(const std::string& name) {
    return (fs::path(INVARNETX_SOURCE_DIR) / "tests" / "golden" / name)
        .string();
  }

  static bool UpdateMode() {
    const char* env = std::getenv("INVARNETX_UPDATE_GOLDEN");
    return env != nullptr && std::string(env) != "0";
  }

  void CheckOrUpdate(const std::string& name, const std::string& rendered) {
    const std::string golden = GoldenPath(name);
    if (UpdateMode()) {
      fs::create_directories(fs::path(golden).parent_path());
      WriteFileRaw(golden, rendered);
      GTEST_SKIP() << "updated " << golden;
    }
    ASSERT_TRUE(fs::exists(golden))
        << golden << " missing; regenerate with INVARNETX_UPDATE_GOLDEN=1";
    EXPECT_EQ(rendered, ReadFile(golden))
        << name << " drifted from its golden copy; if the format change is "
        << "intended, regenerate with INVARNETX_UPDATE_GOLDEN=1";
  }
};

TEST_F(StoreGoldenTest, ArimaModels) {
  const std::string path = TempPath("invarnetx_golden_models.xml");
  ASSERT_TRUE(SaveArimaModels(path, FixtureModels()).ok());
  const std::string rendered = ReadFile(path);
  std::remove(path.c_str());

  // The golden bytes also load back to the fixture.
  const Result<std::vector<ArimaModelRecord>> loaded =
      LoadArimaModels(GoldenPath("models.xml"));
  if (!UpdateMode()) {
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    ASSERT_EQ(loaded.value().size(), 2u);
    EXPECT_EQ(loaded.value()[0].ip, "10.0.0.2");
    EXPECT_EQ(loaded.value()[0].ar.size(), 2u);
    EXPECT_DOUBLE_EQ(loaded.value()[0].ar[1], -0.25);
    EXPECT_DOUBLE_EQ(loaded.value()[1].intercept, -0.001953125);
  }
  CheckOrUpdate("models.xml", rendered);
}

TEST_F(StoreGoldenTest, InvariantSets) {
  const std::string path = TempPath("invarnetx_golden_invariants.xml");
  ASSERT_TRUE(SaveInvariantSets(path, FixtureInvariants()).ok());
  const std::string rendered = ReadFile(path);
  std::remove(path.c_str());

  const Result<std::vector<InvariantSetRecord>> loaded =
      LoadInvariantSets(GoldenPath("invariants.xml"));
  if (!UpdateMode()) {
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    ASSERT_EQ(loaded.value().size(), 1u);
    ASSERT_EQ(loaded.value()[0].entries.size(), 3u);
    EXPECT_DOUBLE_EQ(loaded.value()[0].entries[0].value, 0.9375);
  }
  CheckOrUpdate("invariants.xml", rendered);
}

TEST_F(StoreGoldenTest, Signatures) {
  const std::string path = TempPath("invarnetx_golden_signatures.xml");
  ASSERT_TRUE(SaveSignatures(path, FixtureSignatures()).ok());
  const std::string rendered = ReadFile(path);
  std::remove(path.c_str());

  const Result<std::vector<SignatureRecord>> loaded =
      LoadSignatures(GoldenPath("signatures.xml"));
  if (!UpdateMode()) {
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    ASSERT_EQ(loaded.value().size(), 1u);
    EXPECT_EQ(loaded.value()[0].problem, "net<&>\"drop\"");
    EXPECT_EQ(loaded.value()[0].bits,
              (std::vector<uint8_t>{1, 0, 0, 1, 1}));
  }
  CheckOrUpdate("signatures.xml", rendered);
}

}  // namespace
}  // namespace invarnetx::xmlstore
