#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "telemetry/collectl_import.h"
#include "telemetry/runner.h"
#include "telemetry/trace_io.h"

namespace invarnetx::telemetry {
namespace {

RunTrace SampleTrace() {
  RunConfig config;
  config.workload = workload::WorkloadType::kGrep;
  config.seed = 7;
  config.fault = FaultRequest{faults::FaultType::kDiskHog,
                              DefaultFaultWindow(faults::FaultType::kDiskHog)};
  return SimulateRun(config).value();
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  const RunTrace original = SampleTrace();
  Result<RunTrace> parsed = ParseTraceCsv(WriteTraceCsv(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const RunTrace& copy = parsed.value();
  EXPECT_EQ(copy.workload, original.workload);
  EXPECT_EQ(copy.ticks, original.ticks);
  EXPECT_DOUBLE_EQ(copy.duration_seconds, original.duration_seconds);
  EXPECT_EQ(copy.finished, original.finished);
  ASSERT_EQ(copy.nodes.size(), original.nodes.size());
  for (size_t n = 0; n < copy.nodes.size(); ++n) {
    EXPECT_EQ(copy.nodes[n].ip, original.nodes[n].ip);
    EXPECT_EQ(copy.nodes[n].cpi, original.nodes[n].cpi);  // exact: %.17g
    for (int m = 0; m < kNumMetrics; ++m) {
      EXPECT_EQ(copy.nodes[n].metrics[static_cast<size_t>(m)],
                original.nodes[n].metrics[static_cast<size_t>(m)])
          << MetricName(m);
    }
  }
  ASSERT_TRUE(copy.fault.has_value());
  EXPECT_EQ(copy.fault->type, faults::FaultType::kDiskHog);
  EXPECT_EQ(copy.fault->window.start_tick,
            original.fault->window.start_tick);
  ASSERT_EQ(copy.injected.size(), 1u);
}

TEST(TraceIoTest, RoundTripJobSpans) {
  SequenceConfig config;
  config.jobs = {workload::WorkloadType::kGrep,
                 workload::WorkloadType::kWordCount};
  config.seed = 8;
  const RunTrace original = SimulateJobSequence(config).value();
  Result<RunTrace> parsed = ParseTraceCsv(WriteTraceCsv(original));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().job_spans.size(), 2u);
  EXPECT_EQ(parsed.value().job_spans[1].type,
            workload::WorkloadType::kWordCount);
  EXPECT_EQ(parsed.value().job_spans[1].start_tick,
            original.job_spans[1].start_tick);
  EXPECT_EQ(parsed.value().job_spans[1].end_tick,
            original.job_spans[1].end_tick);
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "invarnetx_trace_test.csv")
          .string();
  const RunTrace original = SampleTrace();
  ASSERT_TRUE(WriteTraceFile(path, original).ok());
  Result<RunTrace> parsed = ReadTraceFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().ticks, original.ticks);
  std::filesystem::remove(path);
}

TEST(TraceIoTest, RejectsGarbage) {
  EXPECT_FALSE(ParseTraceCsv("").ok());
  EXPECT_FALSE(ParseTraceCsv("not a trace\n").ok());
  EXPECT_FALSE(ParseTraceCsv("# invarnetx-trace v1\n").ok());  // no data
}

TEST(TraceIoTest, RejectsWrongColumnOrder) {
  std::string text = WriteTraceCsv(SampleTrace());
  // Swap two metric names in the column header.
  const size_t pos = text.find("cpu_user_pct");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 12, "cpu_sys_pct,");
  EXPECT_FALSE(ParseTraceCsv(text).ok());
}

TEST(TraceIoTest, RejectsTruncatedRows) {
  std::string text = WriteTraceCsv(SampleTrace());
  // Chop the final line short.
  const size_t last_newline = text.find_last_of('\n', text.size() - 2);
  text = text.substr(0, last_newline + 30);
  EXPECT_FALSE(ParseTraceCsv(text).ok());
}

TEST(TraceIoTest, RejectsInconsistentTickCounts) {
  std::string text = WriteTraceCsv(SampleTrace());
  // Duplicate the final data row: its node then has one extra tick.
  const size_t last_newline = text.find_last_of('\n', text.size() - 2);
  text += text.substr(last_newline + 1);
  EXPECT_FALSE(ParseTraceCsv(text).ok());
}

TEST(TraceIoTest, MissingFileIsIoError) {
  Result<RunTrace> trace = ReadTraceFile("/does/not/exist.csv");
  EXPECT_FALSE(trace.ok());
  EXPECT_EQ(trace.status().code(), StatusCode::kIoError);
}

// ------------------------------------------------------ collectl import --

constexpr const char* kCollectlSample =
    "################################################################\n"
    "# Collectl: V4.0.2 ...\n"
    "#Date Time [CPU]User% [CPU]Sys% [CPU]Wait% [CPU]Idle% [CPU]Ctx "
    "[CPU]Intrpt [MEM]Used [MEM]Free [MEM]Cached [MEM]SwapUsed "
    "[DSK]ReadKBTot [DSK]WriteKBTot [NET]RxKBTot [NET]TxKBTot "
    "[TCP]Retrans\n"
    "20140601 00:00:10 45.0 6.0 2.0 47.0 21000 1800 6100 4200 5900 0 "
    "52000 11000 24000 23000 0\n"
    "20140601 00:00:20 47.5 5.5 2.5 44.5 22500 1850 6150 4180 5870 0 "
    "54100 11300 24400 23300 1\n"
    "20140601 00:00:30 44.1 6.2 1.8 47.9 20800 1790 6120 4210 5880 0 "
    "51800 10900 23900 23100 0\n";

TEST(CollectlImportTest, MapsKnownColumns) {
  Result<CollectlImportResult> imported =
      ImportCollectlPlot(kCollectlSample, "10.0.0.2", {1.0, 1.1, 1.05});
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  const NodeTrace& node = imported.value().node;
  EXPECT_EQ(node.ip, "10.0.0.2");
  ASSERT_EQ(node.cpi.size(), 3u);
  EXPECT_DOUBLE_EQ(node.metrics[kCpuUserPct][0], 45.0);
  EXPECT_DOUBLE_EQ(node.metrics[kCpuUserPct][1], 47.5);
  EXPECT_DOUBLE_EQ(node.metrics[kCtxSwitchesPerSec][2], 20800.0);
  EXPECT_DOUBLE_EQ(node.metrics[kDiskReadKbps][1], 54100.0);
  EXPECT_DOUBLE_EQ(node.metrics[kTcpRetransPerSec][1], 1.0);
}

TEST(CollectlImportTest, ReportsMissingMetrics) {
  Result<CollectlImportResult> imported =
      ImportCollectlPlot(kCollectlSample, "10.0.0.2", {});
  ASSERT_TRUE(imported.ok());
  const auto& missing = imported.value().missing_metrics;
  // The sample lacks load, procs, page, iops, util, pkt and threads
  // columns plus the perf CPI series.
  auto has = [&missing](const std::string& name) {
    for (const std::string& m : missing) {
      if (m == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("load_avg_1m"));
  EXPECT_TRUE(has("proc_threads"));
  EXPECT_TRUE(has("cpi"));
  EXPECT_FALSE(has("cpu_user_pct"));
  // Missing sources are zero-filled, and CPI defaults to 1.0.
  EXPECT_DOUBLE_EQ(imported.value().node.metrics[kLoadAvg1m][0], 0.0);
  EXPECT_DOUBLE_EQ(imported.value().node.cpi[0], 1.0);
}

TEST(CollectlImportTest, ValidatesStructure) {
  EXPECT_FALSE(ImportCollectlPlot("", "ip", {}).ok());
  EXPECT_FALSE(ImportCollectlPlot("no header\n1 2 3\n", "ip", {}).ok());
  // Header but no rows.
  EXPECT_FALSE(
      ImportCollectlPlot("#Date Time [CPU]User%\n", "ip", {}).ok());
  // Row width mismatch.
  EXPECT_FALSE(ImportCollectlPlot(
                   "#Date Time [CPU]User%\n20140601 00:00:10\n", "ip", {})
                   .ok());
  // CPI length mismatch.
  EXPECT_FALSE(ImportCollectlPlot(
                   "#Date Time [CPU]User%\n20140601 00:00:10 45.0\n", "ip",
                   {1.0, 2.0})
                   .ok());
}

TEST(CollectlImportTest, ColumnTableCoversMostOfTheCatalog) {
  int covered = 0;
  for (int m = 0; m < kNumMetrics; ++m) {
    if (!CollectlColumnFor(m).empty()) ++covered;
  }
  EXPECT_EQ(covered, kNumMetrics - 1);  // all but proc_threads
}

}  // namespace
}  // namespace invarnetx::telemetry
