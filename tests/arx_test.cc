#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "arx/arx.h"
#include "common/random.h"

namespace invarnetx::arx {
namespace {

// y(t) = 0.4 y(t-1) + 0.8 u(t) + 0.5 + noise
void MakeArxPair(int n, double noise, uint64_t seed, std::vector<double>* u,
                 std::vector<double>* y) {
  Rng rng(seed);
  u->clear();
  y->clear();
  double prev_y = 1.0;
  for (int i = 0; i < n; ++i) {
    const double ut = std::sin(i * 0.3) + rng.Gaussian(0.0, 0.2);
    const double yt =
        0.4 * prev_y + 0.8 * ut + 0.5 + rng.Gaussian(0.0, noise);
    u->push_back(ut);
    y->push_back(yt);
    prev_y = yt;
  }
}

TEST(ArxOrderTest, ToString) {
  EXPECT_EQ((ArxOrder{2, 1, 0}.ToString()), "ARX(2,1,0)");
}

TEST(ArxModelTest, RecoversCoefficients) {
  std::vector<double> u, y;
  MakeArxPair(2000, 0.01, 11, &u, &y);
  Result<ArxModel> model = ArxModel::Fit(y, u, ArxOrder{1, 1, 0});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model.value().a()[0], 0.4, 0.05);
  EXPECT_NEAR(model.value().b()[0], 0.8, 0.05);
  EXPECT_NEAR(model.value().intercept(), 0.5, 0.1);
  EXPECT_GT(model.value().fitness(), 0.9);
}

TEST(ArxModelTest, FitValidatesInput) {
  std::vector<double> five(5, 1.0);
  EXPECT_FALSE(ArxModel::Fit(five, five, ArxOrder{1, 1, 0}).ok());
  std::vector<double> u(50, 1.0), y(40, 1.0);
  EXPECT_FALSE(ArxModel::Fit(y, u, ArxOrder{1, 1, 0}).ok());
  std::vector<double> ok(50, 1.0);
  EXPECT_FALSE(ArxModel::Fit(ok, ok, ArxOrder{-1, 1, 0}).ok());
  EXPECT_FALSE(ArxModel::Fit(ok, ok, ArxOrder{0, 0, 0}).ok());
}

TEST(ArxModelTest, FitnessOneForPerfectFit) {
  std::vector<double> u, y;
  MakeArxPair(400, 0.0, 12, &u, &y);
  Result<ArxModel> model = ArxModel::Fit(y, u, ArxOrder{1, 1, 0});
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model.value().fitness(), 0.999);
}

TEST(ArxModelTest, FitnessLowForUnrelatedInput) {
  Rng rng(13);
  std::vector<double> u, y;
  for (int i = 0; i < 300; ++i) {
    u.push_back(rng.Gaussian(0, 1));
    y.push_back(rng.Gaussian(0, 1));  // white noise: nothing predicts it
  }
  Result<ArxModel> model = ArxModel::Fit(y, u, ArxOrder{1, 1, 0});
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model.value().fitness(), 0.3);
}

TEST(ArxModelTest, PredictWarmupEchoes) {
  std::vector<double> u, y;
  MakeArxPair(50, 0.05, 14, &u, &y);
  Result<ArxModel> model = ArxModel::Fit(y, u, ArxOrder{2, 2, 1});
  ASSERT_TRUE(model.ok());
  Result<std::vector<double>> preds = model.value().PredictInSample(y, u);
  ASSERT_TRUE(preds.ok());
  // warmup = max(na, delay + nb - 1) = 2
  EXPECT_DOUBLE_EQ(preds.value()[0], y[0]);
  EXPECT_DOUBLE_EQ(preds.value()[1], y[1]);
}

TEST(ArxModelTest, EvaluateFitnessOnFreshData) {
  std::vector<double> u1, y1, u2, y2;
  MakeArxPair(500, 0.05, 15, &u1, &y1);
  MakeArxPair(500, 0.05, 16, &u2, &y2);
  Result<ArxModel> model = ArxModel::Fit(y1, u1, ArxOrder{1, 1, 0});
  ASSERT_TRUE(model.ok());
  Result<double> fresh = model.value().EvaluateFitness(y2, u2);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh.value(), 0.8);  // same generating law -> still fits
}

TEST(ArxModelTest, TrainedModelExposesRegimeChange) {
  // The trained model must NOT track data from a different law.
  std::vector<double> u1, y1;
  MakeArxPair(500, 0.02, 17, &u1, &y1);
  Result<ArxModel> model = ArxModel::Fit(y1, u1, ArxOrder{1, 1, 0});
  ASSERT_TRUE(model.ok());
  // Different law: y no longer depends on u.
  Rng rng(18);
  std::vector<double> u2, y2;
  double prev = 0.0;
  for (int i = 0; i < 500; ++i) {
    u2.push_back(std::sin(i * 0.3));
    prev = 0.9 * prev + rng.Gaussian(0.0, 1.0);
    y2.push_back(prev);
  }
  Result<double> fresh = model.value().EvaluateFitness(y2, u2);
  ASSERT_TRUE(fresh.ok());
  EXPECT_LT(fresh.value(), 0.6);
}

TEST(FitArxBestTest, PicksHigherFitnessThanFixedSmallOrder) {
  std::vector<double> u, y;
  MakeArxPair(600, 0.05, 19, &u, &y);
  Result<ArxModel> best = FitArxBest(y, u);
  ASSERT_TRUE(best.ok());
  Result<ArxModel> fixed = ArxModel::Fit(y, u, ArxOrder{1, 1, 2});
  ASSERT_TRUE(fixed.ok());
  EXPECT_GE(best.value().fitness(), fixed.value().fitness() - 1e-12);
}

TEST(ArxAssociationTest, CoupledPairScoresHigh) {
  std::vector<double> u, y;
  MakeArxPair(200, 0.05, 20, &u, &y);
  Result<double> score = ArxAssociationScore(u, y);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(score.value(), 0.6);
}

TEST(ArxAssociationTest, StationaryNoiseConforms) {
  // The association score is a conformance rate: two independent but
  // stationary noise series keep satisfying whatever (weak) linear law was
  // fitted, so the score stays high. Violations signal regime *changes*,
  // not weak coupling - see MidRunRegimeShiftLowersScore.
  Rng rng(21);
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.Gaussian(0, 1));
    b.push_back(rng.Gaussian(0, 1));
  }
  Result<double> score = ArxAssociationScore(a, b);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(score.value(), 0.8);
}

TEST(ArxAssociationTest, ScoreClampedToUnitInterval) {
  Rng rng(22);
  for (int round = 0; round < 5; ++round) {
    std::vector<double> a, b;
    for (int i = 0; i < 120; ++i) {
      a.push_back(rng.Gaussian(0, 1));
      b.push_back(0.7 * a.back() + rng.Gaussian(0, 0.4));
    }
    Result<double> score = ArxAssociationScore(a, b);
    ASSERT_TRUE(score.ok());
    EXPECT_GE(score.value(), 0.0);
    EXPECT_LE(score.value(), 1.0);
  }
}

TEST(ArxAssociationTest, MidRunRegimeShiftLowersScore) {
  // First half coupled, second half decoupled: the cross-validated score
  // must land well below the fully-coupled score.
  Rng rng(23);
  std::vector<double> u, y;
  for (int i = 0; i < 120; ++i) {
    const double ut = std::sin(i * 0.25) + rng.Gaussian(0, 0.1);
    u.push_back(ut);
    y.push_back(i < 60 ? 0.9 * ut + rng.Gaussian(0, 0.05)
                       : rng.Gaussian(0, 1.0));
  }
  std::vector<double> u2, y2;
  for (int i = 0; i < 120; ++i) {
    const double ut = std::sin(i * 0.25) + rng.Gaussian(0, 0.1);
    u2.push_back(ut);
    y2.push_back(0.9 * ut + rng.Gaussian(0, 0.05));
  }
  const double broken = ArxAssociationScore(u, y).value();
  const double intact = ArxAssociationScore(u2, y2).value();
  EXPECT_LT(broken, intact - 0.15);
}

}  // namespace
}  // namespace invarnetx::arx
