// Tests for the TCP ingest front end (src/net): frame codec round trips and
// strict decode errors, oversized / truncated / mid-frame-disconnect wire
// handling, full loopback sessions in both dialects, protocol errors (ERR +
// close), one-session-at-a-time busy rejection, deterministic socket
// backpressure, byte-identical verdicts across shard x thread configs, and
// an xmlstore-fuzz-style random-bytes harness against the listener.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluate.h"
#include "net/frame.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "net/wire.h"
#include "serve/fleet.h"
#include "serve/replay.h"

namespace invarnetx {
namespace {

using core::InvarNetX;
using core::OperationContext;
using net::Frame;
using net::FrameType;
using net::HelloEntry;
using net::IngestClient;
using net::IngestClientOptions;
using net::IngestServer;
using net::IngestServerOptions;
using net::TickOutcome;
using serve::FleetConfig;
using serve::MonitorFleet;
using serve::MonitorHandle;
using serve::TickSample;
using workload::WorkloadType;

OperationContext Context(int node) {
  return OperationContext{WorkloadType::kWordCount,
                          "10.0.0." + std::to_string(node + 1)};
}

std::string ContextToken(int node) { return Context(node).ToString(); }

// One handle-stamped sample for `node` at tick `t` of the trace.
TickSample SampleAt(const telemetry::RunTrace& trace, int node,
                    MonitorHandle handle, size_t t) {
  const telemetry::NodeTrace& series = trace.nodes[static_cast<size_t>(node)];
  TickSample sample;
  sample.monitor = handle;
  sample.cpi = series.cpi[t];
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    sample.metrics[static_cast<size_t>(m)] =
        series.metrics[static_cast<size_t>(m)][t];
  }
  return sample;
}

// Raw loopback connection to a server port; -1 on failure.
int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool BitsEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// ---------------------------------------------------------------------------
// Codec unit tests (no sockets).
// ---------------------------------------------------------------------------

TEST(FrameCodecTest, HelloRoundTrip) {
  const std::vector<HelloEntry> entries = {{"wordcount", "10.0.0.2"},
                                           {"sort", "10.0.0.3"}};
  const std::string frame = net::EncodeHello(entries).value();
  // Length prefix covers type + payload.
  ASSERT_GE(frame.size(), 5u);
  EXPECT_EQ(frame[4], static_cast<char>(FrameType::kHello));
  const auto decoded = net::DecodeHello(frame.substr(5));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), 2u);
  EXPECT_EQ(decoded.value()[0].workload, "wordcount");
  EXPECT_EQ(decoded.value()[0].node_ip, "10.0.0.2");
  EXPECT_EQ(decoded.value()[1].workload, "sort");
  EXPECT_EQ(decoded.value()[1].node_ip, "10.0.0.3");
}

TEST(FrameCodecTest, HelloAckRoundTrip) {
  const std::vector<MonitorHandle> handles = {0, 7, 2147483647, -1};
  const std::string frame = net::EncodeHelloAck(handles);
  const auto decoded = net::DecodeHelloAck(frame.substr(5));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), handles);
}

TEST(FrameCodecTest, TickRoundTripIsBitExact) {
  // Awkward doubles: negative zero, denormal, huge, and a repeating
  // fraction - the binary codec must round trip raw bits.
  std::vector<TickSample> samples(2);
  samples[0].monitor = 3;
  samples[0].cpi = -0.0;
  samples[0].metrics[0] = 5e-324;          // smallest denormal
  samples[0].metrics[25] = 1.0 / 3.0;
  samples[1].monitor = 0;
  samples[1].cpi = 1.7976931348623157e308;  // DBL_MAX
  samples[1].metrics[7] = -123.456789;

  const std::string frame = net::EncodeTick(samples);
  EXPECT_EQ(frame.size(), 5 + 4 + 2 * net::kBinarySampleBytes);
  const auto decoded = net::DecodeTick(frame.substr(5));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), 2u);
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(decoded.value()[i].monitor, samples[i].monitor);
    EXPECT_TRUE(BitsEqual(decoded.value()[i].cpi, samples[i].cpi));
    for (int m = 0; m < telemetry::kNumMetrics; ++m) {
      EXPECT_TRUE(BitsEqual(decoded.value()[i].metrics[static_cast<size_t>(m)],
                            samples[i].metrics[static_cast<size_t>(m)]));
    }
  }
}

TEST(FrameCodecTest, TickReplyPicksBackpressureType) {
  const std::string ok = net::EncodeTickReply(TickOutcome{5, 0});
  EXPECT_EQ(ok[4], static_cast<char>(FrameType::kTickAck));
  const std::string pressed = net::EncodeTickReply(TickOutcome{3, 2});
  EXPECT_EQ(pressed[4], static_cast<char>(FrameType::kBackpressure));
  const auto decoded = net::DecodeTickReply(pressed.substr(5));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().accepted, 3u);
  EXPECT_EQ(decoded.value().rejected, 2u);
}

TEST(FrameCodecTest, DecodersRejectMalformedPayloads) {
  // Truncated HELLO: chop any suffix off a valid payload.
  const std::string hello =
      net::EncodeHello({{"wordcount", "10.0.0.2"}}).value().substr(5);
  for (size_t keep = 0; keep < hello.size(); ++keep) {
    EXPECT_FALSE(net::DecodeHello(hello.substr(0, keep)).ok())
        << "undetected truncation at " << keep;
  }
  // Trailing garbage after the declared entries.
  EXPECT_FALSE(net::DecodeHello(hello + "x").ok());
  // Unsupported version.
  std::string bad_version = hello;
  bad_version[0] = 9;
  EXPECT_FALSE(net::DecodeHello(bad_version).ok());
  // Zero contexts.
  const std::string no_entries("\x01\x00\x00\x00\x00\x00", 6);
  EXPECT_FALSE(net::DecodeHello(no_entries).ok());

  // HELLO-ACK with trailing bytes.
  const std::string ack = net::EncodeHelloAck({1}).substr(5);
  EXPECT_FALSE(net::DecodeHelloAck(ack + "zz").ok());
  EXPECT_FALSE(net::DecodeHelloAck(ack.substr(0, ack.size() - 1)).ok());

  // TICK whose payload size disagrees with its count, both ways.
  std::vector<TickSample> one(1);
  const std::string tick = net::EncodeTick(one).substr(5);
  EXPECT_FALSE(net::DecodeTick(tick.substr(0, tick.size() - 1)).ok());
  EXPECT_FALSE(net::DecodeTick(tick + "x").ok());
  std::string lying_count = tick;
  lying_count[0] = 2;  // claims 2 samples, ships 1
  EXPECT_FALSE(net::DecodeTick(lying_count).ok());

  // Fixed-size replies with the wrong size.
  EXPECT_FALSE(net::DecodeTickReply("1234567").ok());
  EXPECT_FALSE(net::DecodeTickReply("123456789").ok());
  EXPECT_FALSE(net::DecodeEndJobAck("123").ok());
  EXPECT_FALSE(net::DecodeEndJobAck("12345").ok());
}

// A tiny payload claiming a huge entry count must be rejected *before* any
// count-sized allocation: a 10-byte HELLO declaring 2^32-1 entries would
// otherwise reserve ~256 GB and kill the serve process with bad_alloc.
TEST(FrameCodecTest, LyingCountsAreRejectedBeforeAllocation) {
  // version=1, count=0xFFFFFFFF, then nothing.
  const std::string hello("\x01\x00\xff\xff\xff\xff", 6);
  const auto decoded_hello = net::DecodeHello(hello);
  ASSERT_FALSE(decoded_hello.ok());
  EXPECT_NE(decoded_hello.status().message().find("does not fit"),
            std::string::npos)
      << decoded_hello.status().ToString();

  // count=0xFFFFFFFF, then a single stale handle.
  const std::string ack("\xff\xff\xff\xff\x01\x00\x00\x00", 8);
  const auto decoded_ack = net::DecodeHelloAck(ack);
  ASSERT_FALSE(decoded_ack.ok());
  EXPECT_NE(decoded_ack.status().message().find("does not match"),
            std::string::npos)
      << decoded_ack.status().ToString();
}

// str8 fields cap at 255 bytes; encoding must fail loudly instead of
// masking the length and shipping a desynced frame.
TEST(FrameCodecTest, EncodeHelloRejectsOverlongContextFields) {
  const std::string overlong(256, 'w');
  EXPECT_FALSE(net::EncodeHello({{overlong, "10.0.0.2"}}).ok());
  EXPECT_FALSE(net::EncodeHello({{"wordcount", overlong}}).ok());
  // 255 exactly is still legal.
  const std::string at_limit(255, 'w');
  const auto frame = net::EncodeHello({{at_limit, "10.0.0.2"}});
  ASSERT_TRUE(frame.ok());
  const auto decoded = net::DecodeHello(frame.value().substr(5));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value()[0].workload, at_limit);
}

TEST(FrameCodecTest, ReadFrameEnforcesLengthBounds) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  // Oversized declared length is rejected before any payload allocation.
  const char huge[4] = {'\xff', '\xff', '\xff', '\x7f'};
  ASSERT_TRUE(net::WriteAll(fds[0], huge, 4));
  auto oversized = net::ReadFrame(fds[1], 1024);
  ASSERT_FALSE(oversized.ok());
  EXPECT_NE(oversized.status().message().find("oversized"),
            std::string::npos);

  // Zero-length frames are invalid (every frame carries a type byte).
  const char zero[4] = {0, 0, 0, 0};
  ASSERT_TRUE(net::WriteAll(fds[0], zero, 4));
  EXPECT_FALSE(net::ReadFrame(fds[1], 1024).ok());

  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FrameCodecTest, ReadFrameReportsMidFrameDisconnect) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Declare 100 payload bytes, deliver 10, hang up.
  const std::string frame = net::EncodeFrame(FrameType::kTick,
                                             std::string(99, 'x'));
  ASSERT_TRUE(net::WriteAll(fds[0], frame.substr(0, 15)));
  ::close(fds[0]);
  auto result = net::ReadFrame(fds[1], net::kDefaultMaxFramePayload);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  ::close(fds[1]);
}

TEST(FrameCodecTest, SampleLineRoundTripsBitExact) {
  TickSample sample;
  sample.monitor = 42;
  sample.cpi = 1.0 / 3.0;
  sample.metrics[0] = -0.0;
  sample.metrics[5] = 123456.789012345678;
  sample.metrics[25] = 2.2250738585072014e-308;
  const auto parsed = net::ParseSampleLine(net::FormatSampleLine(sample));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().monitor, 42);
  EXPECT_TRUE(BitsEqual(parsed.value().cpi, sample.cpi));
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    EXPECT_TRUE(BitsEqual(parsed.value().metrics[static_cast<size_t>(m)],
                          sample.metrics[static_cast<size_t>(m)]));
  }
}

TEST(FrameCodecTest, SampleLineRejectsMalformedLines) {
  EXPECT_FALSE(net::ParseSampleLine("").ok());
  EXPECT_FALSE(net::ParseSampleLine("notanumber 1 2").ok());
  // Only 3 of the 26 metrics.
  EXPECT_FALSE(net::ParseSampleLine("0 1.0 0.1 0.2 0.3").ok());
  // One field too many.
  TickSample sample;
  EXPECT_FALSE(
      net::ParseSampleLine(net::FormatSampleLine(sample) + " 9").ok());
}

// ---------------------------------------------------------------------------
// Loopback session tests against a real fleet.
// ---------------------------------------------------------------------------

// One trained pipeline shared by the session tests: contexts for slaves 1
// and 2, with the cpu-hog signature taught to slave 1 (the fault victim).
class IngestSessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new InvarNetX();
    auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 8, 42);
    ASSERT_TRUE(normal.ok());
    for (int node = 1; node <= 2; ++node) {
      ASSERT_TRUE(pipeline_
                      ->TrainContext(Context(node), normal.value(),
                                     static_cast<size_t>(node))
                      .ok());
    }
    for (uint64_t rep = 0; rep < 2; ++rep) {
      auto run = core::SimulateFaultRun(WorkloadType::kWordCount,
                                        faults::FaultType::kCpuHog, 900 + rep);
      ASSERT_TRUE(run.ok());
      ASSERT_TRUE(
          pipeline_->AddSignature(Context(1), "cpu-hog", run.value(), 1).ok());
    }
    faulty_ = new telemetry::RunTrace();
    auto faulty = core::SimulateFaultRun(WorkloadType::kWordCount,
                                         faults::FaultType::kCpuHog, 888);
    ASSERT_TRUE(faulty.ok());
    *faulty_ = std::move(faulty.value());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete faulty_;
    pipeline_ = nullptr;
    faulty_ = nullptr;
  }

  // Streams the shared faulty trace through a connected client as one job
  // and returns the EndJob alarm count.
  static uint32_t StreamFaultyRun(IngestClient* client) {
    auto handles = client->Hello(
        {{"wordcount", Context(1).node_ip}, {"wordcount", Context(2).node_ip}});
    EXPECT_TRUE(handles.ok()) << handles.status().ToString();
    EXPECT_TRUE(client->StartJob().ok());
    for (size_t t = 0; t < faulty_->nodes[1].cpi.size(); ++t) {
      auto outcome = client->Tick(
          {SampleAt(*faulty_, 1, handles.value()[0], t),
           SampleAt(*faulty_, 2, handles.value()[1], t)});
      EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
      EXPECT_EQ(outcome.value().accepted, 2u);
      EXPECT_EQ(outcome.value().rejected, 0u);
    }
    auto alarms = client->EndJob();
    EXPECT_TRUE(alarms.ok()) << alarms.status().ToString();
    EXPECT_TRUE(client->Bye().ok());
    return alarms.ok() ? alarms.value() : 0;
  }

  // The reference: the same run ingested in-process and rendered through
  // the same RenderVerdicts path.
  static std::string InProcessVerdicts(FleetConfig config) {
    MonitorFleet fleet(pipeline_, config);
    std::vector<serve::ArmedContext> armed;
    for (int node = 1; node <= 2; ++node) {
      auto handle = fleet.StartJob(Context(node));
      EXPECT_TRUE(handle.ok());
      armed.push_back(serve::ArmedContext{Context(node), handle.value()});
    }
    for (size_t t = 0; t < faulty_->nodes[1].cpi.size(); ++t) {
      auto summary = fleet.IngestTick(
          {SampleAt(*faulty_, 1, armed[0].handle, t),
           SampleAt(*faulty_, 2, armed[1].handle, t)});
      EXPECT_TRUE(summary.ok());
    }
    fleet.WaitForDiagnoses();
    std::ostringstream out;
    out << "== run 0 ==\n";
    serve::RenderVerdicts(fleet, armed, fleet.TakeDiagnoses(), &out);
    return out.str();
  }

  static InvarNetX* pipeline_;
  static telemetry::RunTrace* faulty_;
};

InvarNetX* IngestSessionTest::pipeline_ = nullptr;
telemetry::RunTrace* IngestSessionTest::faulty_ = nullptr;

TEST_F(IngestSessionTest, BinarySessionMatchesInProcessVerdicts) {
  FleetConfig config;
  config.threads = 1;
  config.shards = 1;
  MonitorFleet fleet(pipeline_, config);
  std::ostringstream verdicts;
  IngestServer server(&fleet, &verdicts, {});
  ASSERT_TRUE(server.Start().ok());

  IngestClientOptions options;
  options.port = server.port();
  IngestClient client(options);
  ASSERT_TRUE(client.Connect().ok());
  const uint32_t alarms = StreamFaultyRun(&client);
  EXPECT_GE(alarms, 1u);

  const net::SessionStats stats = server.WaitForSession();
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.runs, 1);
  EXPECT_EQ(stats.total_alarms, alarms);
  server.Stop();

  EXPECT_EQ(verdicts.str(), InProcessVerdicts(config));
  EXPECT_NE(verdicts.str().find("10.0.0.2: ALARM"), std::string::npos)
      << verdicts.str();
  EXPECT_NE(verdicts.str().find("cpu-hog"), std::string::npos);
}

TEST_F(IngestSessionTest, TextSessionMatchesBinarySession) {
  std::string binary_verdicts;
  std::string text_verdicts;
  for (const bool text : {false, true}) {
    FleetConfig config;
    config.threads = 1;
    config.shards = 1;
    MonitorFleet fleet(pipeline_, config);
    std::ostringstream verdicts;
    IngestServer server(&fleet, &verdicts, {});
    ASSERT_TRUE(server.Start().ok());
    IngestClientOptions options;
    options.port = server.port();
    options.text = text;
    IngestClient client(options);
    ASSERT_TRUE(client.Connect().ok());
    StreamFaultyRun(&client);
    EXPECT_TRUE(server.WaitForSession().completed);
    server.Stop();
    (text ? text_verdicts : binary_verdicts) = verdicts.str();
  }
  EXPECT_EQ(binary_verdicts, text_verdicts);
  EXPECT_FALSE(binary_verdicts.empty());
}

// The acceptance matrix: socket-fed verdicts are identical across every
// shard x thread combination (and identical to the in-process reference).
TEST_F(IngestSessionTest, VerdictsByteIdenticalAcrossShardsAndThreads) {
  std::string reference;
  for (const int shards : {1, 2, 8}) {
    for (const int threads : {1, 4}) {
      FleetConfig config;
      config.threads = threads;
      config.shards = shards;
      MonitorFleet fleet(pipeline_, config);
      std::ostringstream verdicts;
      IngestServer server(&fleet, &verdicts, {});
      ASSERT_TRUE(server.Start().ok());
      IngestClientOptions options;
      options.port = server.port();
      IngestClient client(options);
      ASSERT_TRUE(client.Connect().ok());
      StreamFaultyRun(&client);
      EXPECT_TRUE(server.WaitForSession().completed);
      server.Stop();
      if (reference.empty()) {
        reference = verdicts.str();
        EXPECT_EQ(reference, InProcessVerdicts(config));
      } else {
        EXPECT_EQ(verdicts.str(), reference)
            << "shards=" << shards << " threads=" << threads;
      }
    }
  }
}

TEST_F(IngestSessionTest, UnknownContextInHelloClosesConnection) {
  MonitorFleet fleet(pipeline_, {});
  IngestServer server(&fleet, nullptr, {});
  ASSERT_TRUE(server.Start().ok());

  // Untrained node: StartJob fails, ERR closes the connection.
  {
    IngestClientOptions options;
    options.port = server.port();
    IngestClient client(options);
    ASSERT_TRUE(client.Connect().ok());
    auto handles = client.Hello({{"wordcount", "10.9.9.9"}});
    ASSERT_FALSE(handles.ok());
    EXPECT_NE(handles.status().message().find("unknown context"),
              std::string::npos)
        << handles.status().ToString();
    // The server closed its side; the next round trip fails.
    EXPECT_FALSE(client.StartJob().ok());
  }
  // Unknown workload spelling, via the text dialect. The previous failed
  // session may still be releasing its slot; retry through the busy window.
  for (int attempt = 0; attempt < 100; ++attempt) {
    IngestClientOptions options;
    options.port = server.port();
    options.text = true;
    IngestClient client(options);
    ASSERT_TRUE(client.Connect().ok());
    auto handles = client.Hello({{"mapreduce9000", "10.0.0.2"}});
    ASSERT_FALSE(handles.ok());
    if (handles.status().message().find("busy") != std::string::npos) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    EXPECT_NE(handles.status().message().find("unknown workload"),
              std::string::npos)
        << handles.status().ToString();
    break;
  }
  server.Stop();
}

TEST_F(IngestSessionTest, DuplicateHandleInOneTickClosesConnection) {
  MonitorFleet fleet(pipeline_, {});
  IngestServer server(&fleet, nullptr, {});
  ASSERT_TRUE(server.Start().ok());

  IngestClientOptions options;
  options.port = server.port();
  IngestClient client(options);
  ASSERT_TRUE(client.Connect().ok());
  auto handles = client.Hello(
      {{"wordcount", Context(1).node_ip}, {"wordcount", Context(2).node_ip}});
  ASSERT_TRUE(handles.ok());
  // Both samples stamp the same monitor: IngestTick rejects the whole batch
  // up front (fleet untouched) and the server answers with a strict ERR.
  auto outcome = client.Tick({SampleAt(*faulty_, 1, handles.value()[0], 0),
                              SampleAt(*faulty_, 2, handles.value()[0], 0)});
  ASSERT_FALSE(outcome.ok());
  EXPECT_FALSE(client.StartJob().ok());  // connection is gone
  server.Stop();
}

TEST_F(IngestSessionTest, SecondConcurrentSessionIsTurnedAwayBusy) {
  MonitorFleet fleet(pipeline_, {});
  IngestServer server(&fleet, nullptr, {});
  ASSERT_TRUE(server.Start().ok());

  IngestClientOptions options;
  options.port = server.port();
  IngestClient first(options);
  ASSERT_TRUE(first.Connect().ok());
  auto handles = first.Hello({{"wordcount", Context(1).node_ip}});
  ASSERT_TRUE(handles.ok());

  IngestClient second(options);
  ASSERT_TRUE(second.Connect().ok());
  auto rejected = second.Hello({{"wordcount", Context(2).node_ip}});
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("busy"), std::string::npos)
      << rejected.status().ToString();

  // The first session is unaffected.
  ASSERT_TRUE(first.StartJob().ok());
  auto outcome = first.Tick({SampleAt(*faulty_, 1, handles.value()[0], 0)});
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(first.Bye().ok());
  server.Stop();
}

// Once a session completes with BYE the report is being assembled; a late
// producer must be refused, not allowed to append extra run blocks.
TEST_F(IngestSessionTest, SessionAfterCleanCompletionIsRefused) {
  MonitorFleet fleet(pipeline_, {});
  std::ostringstream verdicts;
  IngestServer server(&fleet, &verdicts, {});
  ASSERT_TRUE(server.Start().ok());

  IngestClientOptions options;
  options.port = server.port();
  {
    IngestClient client(options);
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.Hello({{"wordcount", Context(1).node_ip}}).ok());
    ASSERT_TRUE(client.Bye().ok());
  }
  // The completed session is latched even before WaitForSession runs. The
  // BYE-ACK races ahead of the latch (it is sent before OnBye completes),
  // so retry through the brief busy window.
  for (int attempt = 0; attempt < 100; ++attempt) {
    IngestClient late(options);
    ASSERT_TRUE(late.Connect().ok());
    auto refused = late.Hello({{"wordcount", Context(2).node_ip}});
    ASSERT_FALSE(refused.ok());
    if (refused.status().message().find("busy") != std::string::npos) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    EXPECT_NE(refused.status().message().find("done"), std::string::npos)
        << refused.status().ToString();
    break;
  }
  EXPECT_TRUE(server.WaitForSession().completed);
  server.Stop();
}

// A session that renders verdicts (ENDJOB) but dies without BYE must leave
// no partial run blocks in the sink; the next clean session's report is
// exactly its own blocks.
TEST_F(IngestSessionTest, DirtySessionLeavesNoPartialVerdicts) {
  FleetConfig config;
  config.threads = 1;
  config.shards = 1;
  MonitorFleet fleet(pipeline_, config);
  std::ostringstream verdicts;
  IngestServer server(&fleet, &verdicts, {});
  ASSERT_TRUE(server.Start().ok());

  IngestClientOptions options;
  options.port = server.port();
  {
    IngestClient dirty(options);
    ASSERT_TRUE(dirty.Connect().ok());
    auto handles = dirty.Hello({{"wordcount", Context(1).node_ip}});
    ASSERT_TRUE(handles.ok());
    ASSERT_TRUE(dirty.StartJob().ok());
    auto outcome =
        dirty.Tick({SampleAt(*faulty_, 1, handles.value()[0], 0)});
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(dirty.EndJob().ok());  // renders "== run 0 ==" somewhere
    dirty.Close();                     // ...but never says BYE
  }
  EXPECT_EQ(verdicts.str(), "");  // the dirty block never reached the sink

  // A clean session afterwards owns the report outright.
  bool streamed = false;
  for (int attempt = 0; attempt < 100 && !streamed; ++attempt) {
    IngestClient clean(options);
    ASSERT_TRUE(clean.Connect().ok());
    auto handles = clean.Hello({{"wordcount", Context(2).node_ip}});
    if (!handles.ok()) {
      clean.Close();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    ASSERT_TRUE(clean.StartJob().ok());
    auto outcome =
        clean.Tick({SampleAt(*faulty_, 2, handles.value()[0], 0)});
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(clean.EndJob().ok());
    ASSERT_TRUE(clean.Bye().ok());
    streamed = true;
  }
  ASSERT_TRUE(streamed);
  const net::SessionStats stats = server.WaitForSession();
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.runs, 1);
  server.Stop();
  // Exactly one run block: the clean session's own run 0.
  EXPECT_EQ(verdicts.str().find("== run 0 =="), 0u) << verdicts.str();
  EXPECT_EQ(verdicts.str().find("== run 0 ==", 1), std::string::npos);
}

// The text dialect shares the binary dialect's resource bound: TICK counts
// above max_frame_bytes / 220 are refused instead of buffering unbounded
// sample vectors for an unauthenticated peer.
TEST_F(IngestSessionTest, TextTickCountSharesBinaryFrameBound) {
  MonitorFleet fleet(pipeline_, {});
  IngestServerOptions server_options;
  server_options.max_frame_bytes = 10 * net::kBinarySampleBytes;
  IngestServer server(&fleet, nullptr, server_options);
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  net::LineReader reader(fd);
  std::string line;
  ASSERT_TRUE(net::WriteAll(fd, "HELLO v1 " + ContextToken(1) + "\n"));
  ASSERT_TRUE(reader.ReadLine(&line));
  ASSERT_EQ(line, "OK 0");
  ASSERT_TRUE(net::WriteAll(fd, std::string("TICK 11\n")));
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line.find("ERR bad TICK count"), 0u) << line;
  ::close(fd);
  server.Stop();
}

// Socket backpressure is the fleet's deterministic ring-reject policy made
// visible on the wire: with one shard and a 1-deep ring, a 2-sample tick
// always admits the first sample in batch order and rejects the second -
// and the text dialect labels the reply BACKPRESSURE explicitly.
TEST_F(IngestSessionTest, BackpressureIsExplicitAndDeterministic) {
  FleetConfig config;
  config.threads = 1;
  config.shards = 1;
  config.ring_capacity = 1;
  MonitorFleet fleet(pipeline_, config);
  IngestServer server(&fleet, nullptr, {});
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  net::LineReader reader(fd);
  std::string line;

  ASSERT_TRUE(net::WriteAll(
      fd, "HELLO v1 " + ContextToken(1) + " " + ContextToken(2) + "\n"));
  ASSERT_TRUE(reader.ReadLine(&line));
  ASSERT_EQ(line, "OK 0 1") << line;
  ASSERT_TRUE(net::WriteAll(fd, std::string("JOB\n")));
  ASSERT_TRUE(reader.ReadLine(&line));
  ASSERT_EQ(line, "OK");

  for (int repeat = 0; repeat < 3; ++repeat) {
    std::string tick = "TICK 2\n";
    tick += net::FormatSampleLine(
                SampleAt(*faulty_, 1, 0, static_cast<size_t>(repeat))) +
            "\n";
    tick += net::FormatSampleLine(
                SampleAt(*faulty_, 2, 1, static_cast<size_t>(repeat))) +
            "\n";
    ASSERT_TRUE(net::WriteAll(fd, tick));
    ASSERT_TRUE(reader.ReadLine(&line));
    // Deterministic: same counts every tick, batch order decides admission.
    EXPECT_EQ(line, "BACKPRESSURE 1 1");
  }
  ASSERT_TRUE(net::WriteAll(fd, std::string("BYE\n")));
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "OK");
  ::close(fd);
  server.Stop();
}

TEST_F(IngestSessionTest, OversizedTickFrameIsRejectedBeforeAllocation) {
  MonitorFleet fleet(pipeline_, {});
  IngestServerOptions server_options;
  server_options.max_frame_bytes = 1024;  // fits a handful of samples only
  IngestServer server(&fleet, nullptr, server_options);
  ASSERT_TRUE(server.Start().ok());

  IngestClientOptions options;
  options.port = server.port();
  IngestClient client(options);
  ASSERT_TRUE(client.Connect().ok());
  auto handles = client.Hello({{"wordcount", Context(1).node_ip}});
  ASSERT_TRUE(handles.ok());
  // 100 samples = ~22 KB of payload, far over the 1 KiB server cap.
  std::vector<TickSample> oversized(100);
  auto outcome = client.Tick(oversized);
  ASSERT_FALSE(outcome.ok());
  server.Stop();
}

TEST_F(IngestSessionTest, UnexpectedFrameTypeGetsStrictErr) {
  MonitorFleet fleet(pipeline_, {});
  IngestServer server(&fleet, nullptr, {});
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(net::WriteAll(fd, net::kBinaryMagic, 4));
  ASSERT_TRUE(
      net::WriteAll(fd, net::EncodeFrame(static_cast<FrameType>(0x42), "")));
  auto reply = net::ReadFrame(fd, net::kDefaultMaxFramePayload);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().type, FrameType::kErr);
  EXPECT_NE(reply.value().payload.find("unexpected frame"),
            std::string::npos);
  // And the connection is closed: the next read sees EOF.
  char byte;
  EXPECT_FALSE(net::ReadFull(fd, &byte, 1));
  ::close(fd);
  server.Stop();
}

TEST_F(IngestSessionTest, TickBeforeHelloIsAProtocolError) {
  MonitorFleet fleet(pipeline_, {});
  IngestServer server(&fleet, nullptr, {});
  ASSERT_TRUE(server.Start().ok());
  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(net::WriteAll(fd, net::kBinaryMagic, 4));
  ASSERT_TRUE(net::WriteAll(fd, net::EncodeTick({TickSample{}})));
  auto reply = net::ReadFrame(fd, net::kDefaultMaxFramePayload);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().type, FrameType::kErr);
  ::close(fd);
  server.Stop();
}

// A producer that dies mid-frame must not wedge the server or complete the
// session; the next producer gets a clean slate.
TEST_F(IngestSessionTest, MidFrameDisconnectReleasesTheSession) {
  FleetConfig config;
  config.threads = 1;
  MonitorFleet fleet(pipeline_, config);
  std::ostringstream verdicts;
  IngestServer server(&fleet, &verdicts, {});
  ASSERT_TRUE(server.Start().ok());

  {
    const int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(net::WriteAll(fd, net::kBinaryMagic, 4));
    ASSERT_TRUE(net::WriteAll(fd, net::EncodeHello(
        {{"wordcount", Context(1).node_ip}}).value()));
    auto ack = net::ReadFrame(fd, net::kDefaultMaxFramePayload);
    ASSERT_TRUE(ack.ok());
    // Announce a TICK frame, deliver half of it, vanish.
    const std::string tick = net::EncodeTick({TickSample{}});
    ASSERT_TRUE(net::WriteAll(fd, tick.substr(0, tick.size() / 2)));
    ::close(fd);
  }

  // A full clean session still works afterwards.
  IngestClientOptions options;
  options.port = server.port();
  IngestClient client(options);
  // The dead session's worker may still be unwinding; retry briefly.
  bool streamed = false;
  for (int attempt = 0; attempt < 50 && !streamed; ++attempt) {
    ASSERT_TRUE(client.Connect().ok());
    auto handles = client.Hello({{"wordcount", Context(1).node_ip}});
    if (handles.ok()) {
      EXPECT_TRUE(client.Bye().ok());
      streamed = true;
    } else {
      client.Close();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(streamed);
  const net::SessionStats stats = server.WaitForSession();
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.runs, 0);  // the clean session streamed no jobs
  server.Stop();
}

TEST_F(IngestSessionTest, StopUnblocksWaitForSession) {
  MonitorFleet fleet(pipeline_, {});
  IngestServer server(&fleet, nullptr, {});
  ASSERT_TRUE(server.Start().ok());
  net::SessionStats stats;
  std::thread waiter([&] { stats = server.WaitForSession(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Stop();
  waiter.join();
  EXPECT_FALSE(stats.completed);
}

// xmlstore-fuzz-style resilience: hundreds of connections spraying random
// bytes (sometimes behind a valid magic) must never crash or wedge the
// listener, and a clean session must still complete afterwards.
TEST_F(IngestSessionTest, RandomBytesFuzzNeverCrashesOrWedges) {
  FleetConfig config;
  config.threads = 1;
  MonitorFleet fleet(pipeline_, config);
  IngestServerOptions server_options;
  server_options.io_timeout_seconds = 2;  // a wedged read can't stall Stop
  IngestServer server(&fleet, nullptr, server_options);
  ASSERT_TRUE(server.Start().ok());

  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> length_dist(1, 512);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int i = 0; i < 200; ++i) {
    const int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0) << "listener died after " << i << " fuzz connections";
    std::string blob;
    if (i % 3 == 0) blob.assign(net::kBinaryMagic, 4);  // binary dialect
    const int len = length_dist(rng);
    for (int b = 0; b < len; ++b) {
      blob.push_back(static_cast<char>(byte_dist(rng)));
    }
    net::WriteAll(fd, blob);  // peer may already have closed: ignore result
    ::close(fd);
  }

  // The listener survived; a clean session still round trips. Fuzz workers
  // may still be draining, so retry into the busy window.
  IngestClientOptions options;
  options.port = server.port();
  bool clean = false;
  for (int attempt = 0; attempt < 100 && !clean; ++attempt) {
    IngestClient client(options);
    ASSERT_TRUE(client.Connect().ok());
    auto handles = client.Hello({{"wordcount", Context(1).node_ip}});
    if (handles.ok()) {
      EXPECT_TRUE(client.Bye().ok());
      clean = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(clean);
  EXPECT_TRUE(server.WaitForSession().completed);
  server.Stop();
}

}  // namespace
}  // namespace invarnetx
