#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "core/pipeline.h"
#include "obs/metrics.h"

namespace invarnetx::core {
namespace {

using workload::WorkloadType;

constexpr size_t kVictim = 1;

const OperationContext kContext{WorkloadType::kWordCount, "10.0.0.2"};

// Shared expensive fixtures: trained pipeline + a few runs.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    normal_ = new std::vector<telemetry::RunTrace>(
        SimulateNormalRuns(WorkloadType::kWordCount, 10, 42).value());
    pipeline_ = new InvarNetX();
    ASSERT_TRUE(pipeline_->TrainContext(kContext, *normal_, kVictim).ok());
    uint64_t fault_index = 0;
    for (auto fault : {faults::FaultType::kMemHog, faults::FaultType::kCpuHog,
                       faults::FaultType::kSuspend}) {
      for (uint64_t rep = 0; rep < 2; ++rep) {
        auto run = SimulateFaultRun(WorkloadType::kWordCount, fault,
                                    1000 + fault_index * 131 + rep);
        ASSERT_TRUE(pipeline_
                        ->AddSignature(kContext, faults::FaultName(fault),
                                       run.value(), kVictim)
                        .ok());
      }
      ++fault_index;
    }
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete normal_;
    pipeline_ = nullptr;
    normal_ = nullptr;
  }

  static std::vector<telemetry::RunTrace>* normal_;
  static InvarNetX* pipeline_;
};

std::vector<telemetry::RunTrace>* PipelineTest::normal_ = nullptr;
InvarNetX* PipelineTest::pipeline_ = nullptr;

TEST_F(PipelineTest, TrainingPopulatesContext) {
  EXPECT_TRUE(pipeline_->HasContext(kContext));
  EXPECT_FALSE(pipeline_->HasContext(
      OperationContext{WorkloadType::kSort, "10.0.0.2"}));
  const std::shared_ptr<const ContextModel> model =
      pipeline_->GetContext(kContext).value();
  EXPECT_GT(model->invariants.NumInvariants(), 50);
  EXPECT_GT(model->perf.residual_max(), 0.0);
  EXPECT_EQ(model->sigdb.size(), 6u);
}

TEST_F(PipelineTest, TinyAnalysisWindowsTrainWithoutHanging) {
  // Regression: analysis_window = 1 used to spin forever in the window
  // layout (stride window/2 == 0 never advanced the slice start). Both
  // degenerate widths must now lay out finitely and train to completion:
  // sub-4-tick slices score every pair 0.0 (too short for MIC), so the
  // stability filter keeps flat zero-valued invariants and the performance
  // model still calibrates.
  for (int window : {1, 2}) {
    InvarNetXConfig config;
    config.analysis_window = window;
    InvarNetX tiny(config);
    ASSERT_TRUE(tiny.TrainContext(kContext, *normal_, kVictim).ok())
        << "analysis_window=" << window;
    const std::shared_ptr<const ContextModel> model =
        tiny.GetContext(kContext).value();
    EXPECT_GT(model->perf.residual_max(), 0.0);
    for (int pair : model->invariants.PairIndices()) {
      EXPECT_EQ(model->invariants.values[static_cast<size_t>(pair)], 0.0);
    }
    // The online path degrades gracefully: detection still works, cause
    // inference just has no invariants to violate.
    auto run = SimulateFaultRun(WorkloadType::kWordCount,
                                faults::FaultType::kCpuHog, 901);
    Result<DiagnosisReport> report =
        tiny.Diagnose(kContext, run.value(), kVictim);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report.value().num_violations, 0);
  }
}

TEST_F(PipelineTest, EpochAdvancesAcrossRetrainsAndSnapshotsStayPinned) {
  InvarNetX fresh;
  ASSERT_TRUE(fresh.TrainContext(kContext, *normal_, kVictim).ok());
  const std::shared_ptr<const ContextModel> first =
      fresh.GetContext(kContext).value();
  EXPECT_EQ(first->epoch, 1u);
  ASSERT_TRUE(fresh.TrainContext(kContext, *normal_, kVictim).ok());
  const std::shared_ptr<const ContextModel> second =
      fresh.GetContext(kContext).value();
  EXPECT_EQ(second->epoch, 2u);
  // The old snapshot is unchanged - consumers that pinned it are safe.
  EXPECT_EQ(first->epoch, 1u);
  EXPECT_NE(first.get(), second.get());
  // AddSignature publishes a new epoch too, and signatures taught before a
  // retrain carry over to the fresh epoch.
  auto run = SimulateFaultRun(WorkloadType::kWordCount,
                              faults::FaultType::kCpuHog, 902);
  ASSERT_TRUE(fresh.AddSignature(kContext, "cpu-hog", run.value(), kVictim)
                  .ok());
  EXPECT_EQ(fresh.GetContext(kContext).value()->epoch, 3u);
  ASSERT_TRUE(fresh.TrainContext(kContext, *normal_, kVictim).ok());
  EXPECT_EQ(fresh.GetContext(kContext).value()->epoch, 4u);
  EXPECT_EQ(fresh.GetContext(kContext).value()->sigdb.size(), 1u);
  EXPECT_EQ(second->sigdb.size(), 0u);  // older snapshots never mutate
}

TEST_F(PipelineTest, RetrainOnUnchangedDataReusesEveryPairScore) {
  obs::Counter& rescored =
      obs::MetricsRegistry::Shared().GetCounter("pipeline.pairs_rescored");
  obs::Counter& reused =
      obs::MetricsRegistry::Shared().GetCounter("pipeline.pairs_reused");

  InvarNetXConfig config;
  config.use_association_cache = false;  // isolate digest-driven reuse
  InvarNetX fresh(config);
  ASSERT_TRUE(fresh.TrainContext(kContext, *normal_, kVictim).ok());
  const std::shared_ptr<const ContextModel> cold =
      fresh.GetContext(kContext).value();
  ASSERT_FALSE(cold->mining.records.empty());

  // Same examples again: every slice digest matches the carried mining
  // snapshot, so no pair is rescored and the published invariants are
  // byte-identical.
  const uint64_t rescored_before = rescored.value();
  const uint64_t reused_before = reused.value();
  ASSERT_TRUE(fresh.TrainContext(kContext, *normal_, kVictim).ok());
  const std::shared_ptr<const ContextModel> warm =
      fresh.GetContext(kContext).value();
  EXPECT_EQ(rescored.value() - rescored_before, 0u);
  EXPECT_EQ(reused.value() - reused_before,
            cold->mining.records.size() *
                static_cast<size_t>(telemetry::kNumMetricPairs));
  EXPECT_EQ(warm->invariants.values, cold->invariants.values);
  EXPECT_EQ(warm->invariants.PairIndices(), cold->invariants.PairIndices());

  // One perturbed tick in one metric of one run dirties only that run's
  // slices; the rest of the fleet of pair scores is still reused.
  std::vector<telemetry::RunTrace> perturbed = *normal_;
  perturbed[0].nodes[kVictim].metrics[5][3] += 1.0;
  const uint64_t rescored_mid = rescored.value();
  ASSERT_TRUE(fresh.TrainContext(kContext, perturbed, kVictim).ok());
  const uint64_t delta = rescored.value() - rescored_mid;
  EXPECT_GT(delta, 0u);
  EXPECT_LE(delta, static_cast<uint64_t>(telemetry::kNumMetrics - 1) *
                       cold->mining.records.size());
}

TEST_F(PipelineTest, MiningStateSurvivesAddSignatureEpochs) {
  obs::Counter& rescored =
      obs::MetricsRegistry::Shared().GetCounter("pipeline.pairs_rescored");
  InvarNetXConfig config;
  config.use_association_cache = false;
  InvarNetX fresh(config);
  ASSERT_TRUE(fresh.TrainContext(kContext, *normal_, kVictim).ok());
  // AddSignature publishes a new epoch via copy; the mining snapshot must
  // ride along so the retrain after it still reuses everything.
  auto run = SimulateFaultRun(WorkloadType::kWordCount,
                              faults::FaultType::kCpuHog, 903);
  ASSERT_TRUE(
      fresh.AddSignature(kContext, "cpu-hog", run.value(), kVictim).ok());
  EXPECT_FALSE(fresh.GetContext(kContext).value()->mining.records.empty());
  const uint64_t before = rescored.value();
  ASSERT_TRUE(fresh.TrainContext(kContext, *normal_, kVictim).ok());
  EXPECT_EQ(rescored.value() - before, 0u);
  EXPECT_EQ(fresh.GetContext(kContext).value()->sigdb.size(), 1u);
}

TEST_F(PipelineTest, VerifyIncrementalOraclePassesOnRetrain) {
  InvarNetXConfig config;
  config.verify_incremental = true;
  InvarNetX checked(config);
  ASSERT_TRUE(checked.TrainContext(kContext, *normal_, kVictim).ok());
  // The second train takes the incremental path under the cold-recompute
  // oracle; any reuse that is not byte-identical would fail the train.
  ASSERT_TRUE(checked.TrainContext(kContext, *normal_, kVictim).ok());
}

TEST_F(PipelineTest, TrainRejectsTooFewRuns) {
  InvarNetX fresh;
  std::vector<telemetry::RunTrace> one(normal_->begin(),
                                       normal_->begin() + 1);
  EXPECT_FALSE(fresh.TrainContext(kContext, one, kVictim).ok());
}

TEST_F(PipelineTest, TrainRejectsBadNodeIndex) {
  InvarNetX fresh;
  EXPECT_FALSE(fresh.TrainContext(kContext, *normal_, 99).ok());
}

TEST_F(PipelineTest, DiagnoseUntrainedContextFails) {
  auto run = SimulateFaultRun(WorkloadType::kSort,
                              faults::FaultType::kCpuHog, 7);
  Result<DiagnosisReport> report = pipeline_->Diagnose(
      OperationContext{WorkloadType::kSort, "10.0.0.2"}, run.value(),
      kVictim);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PipelineTest, NormalRunRaisesNoAlarm) {
  auto clean = SimulateNormalRuns(WorkloadType::kWordCount, 1, 555);
  Result<DiagnosisReport> report =
      pipeline_->Diagnose(kContext, clean.value()[0], kVictim);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().anomaly_detected);
  EXPECT_TRUE(report.value().causes.empty());
}

TEST_F(PipelineTest, KnownFaultDiagnosedCorrectly) {
  // Across a handful of incident runs, mem-hog must always be detected and
  // rank among the top-2 causes (a heavy swap storm partially collapses
  // node activity, so it genuinely borders the suspend signature; the
  // full-scale campaign in bench/fig8 measures exact top-1 rates).
  int detected = 0, top2 = 0, top1 = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto run = SimulateFaultRun(WorkloadType::kWordCount,
                                faults::FaultType::kMemHog, 9001 + seed * 7);
    Result<DiagnosisReport> report =
        pipeline_->Diagnose(kContext, run.value(), kVictim);
    ASSERT_TRUE(report.ok());
    if (!report.value().anomaly_detected) continue;
    ++detected;
    EXPECT_GT(report.value().num_violations, 3);
    const auto& causes = report.value().causes;
    for (size_t k = 0; k < causes.size() && k < 2; ++k) {
      if (causes[k].problem == "mem-hog") {
        ++top2;
        if (k == 0) ++top1;
        break;
      }
    }
  }
  EXPECT_GE(detected, 4);
  EXPECT_EQ(top2, detected);
  EXPECT_GE(top1, 2);
}

TEST_F(PipelineTest, CausesAreSortedDescending) {
  auto run = SimulateFaultRun(WorkloadType::kWordCount,
                              faults::FaultType::kSuspend, 9002);
  Result<DiagnosisReport> report =
      pipeline_->InferCause(kContext, run.value(), kVictim);
  ASSERT_TRUE(report.ok());
  for (size_t i = 1; i < report.value().causes.size(); ++i) {
    EXPECT_GE(report.value().causes[i - 1].score,
              report.value().causes[i].score);
  }
}

TEST_F(PipelineTest, HintsNameViolatedPairs) {
  auto run = SimulateFaultRun(WorkloadType::kWordCount,
                              faults::FaultType::kCpuHog, 9003);
  Result<DiagnosisReport> report =
      pipeline_->InferCause(kContext, run.value(), kVictim);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report.value().hints.empty());
  EXPECT_LE(report.value().hints.size(), 10u);
  EXPECT_NE(report.value().hints[0].find(" ~ "), std::string::npos);
}

TEST_F(PipelineTest, SaveLoadRoundTrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "invarnetx_pipeline_test")
          .string();
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(pipeline_->SaveToDirectory(dir).ok());

  InvarNetX reloaded;
  ASSERT_TRUE(reloaded.LoadFromDirectory(dir).ok());
  ASSERT_TRUE(reloaded.HasContext(kContext));
  const std::shared_ptr<const ContextModel> original_ptr =
      pipeline_->GetContext(kContext).value();
  const std::shared_ptr<const ContextModel> copy_ptr =
      reloaded.GetContext(kContext).value();
  const ContextModel& original = *original_ptr;
  const ContextModel& copy = *copy_ptr;
  EXPECT_EQ(copy.invariants.NumInvariants(),
            original.invariants.NumInvariants());
  EXPECT_EQ(copy.sigdb.size(), original.sigdb.size());
  EXPECT_DOUBLE_EQ(copy.perf.residual_max(), original.perf.residual_max());
  EXPECT_EQ(copy.perf.arima().order().p, original.perf.arima().order().p);

  // The reloaded pipeline must produce the same inference output.
  auto run = SimulateFaultRun(WorkloadType::kWordCount,
                              faults::FaultType::kMemHog, 9004);
  const DiagnosisReport a =
      pipeline_->InferCause(kContext, run.value(), kVictim).value();
  const DiagnosisReport b =
      reloaded.InferCause(kContext, run.value(), kVictim).value();
  EXPECT_EQ(a.violations, b.violations);
  ASSERT_FALSE(a.causes.empty());
  ASSERT_FALSE(b.causes.empty());
  EXPECT_EQ(a.causes[0].problem, b.causes[0].problem);
  EXPECT_DOUBLE_EQ(a.causes[0].score, b.causes[0].score);
  std::filesystem::remove_all(dir);
}

TEST_F(PipelineTest, StoreRemembersItsConfiguration) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "invarnetx_cfg_test")
          .string();
  std::filesystem::create_directories(dir);
  InvarNetXConfig config;
  config.engine = AssociationEngineType::kEnsemble;
  config.epsilon = 0.15;
  config.similarity = SimilarityMetric::kIdfJaccard;
  InvarNetX trained(config);
  auto normal = SimulateNormalRuns(WorkloadType::kWordCount, 4, 42);
  ASSERT_TRUE(trained.TrainContext(kContext, normal.value(), kVictim).ok());
  ASSERT_TRUE(trained.SaveToDirectory(dir).ok());

  // A fresh pipeline with DEFAULT configuration picks up the store's.
  InvarNetX reloaded;
  ASSERT_TRUE(reloaded.LoadFromDirectory(dir).ok());
  EXPECT_EQ(reloaded.config().engine, AssociationEngineType::kEnsemble);
  EXPECT_DOUBLE_EQ(reloaded.config().epsilon, 0.15);
  EXPECT_EQ(reloaded.config().similarity, SimilarityMetric::kIdfJaccard);
  std::filesystem::remove_all(dir);
}

TEST_F(PipelineTest, LoadFromMissingDirectoryFails) {
  InvarNetX fresh;
  EXPECT_FALSE(fresh.LoadFromDirectory("/nonexistent/invarnetx").ok());
}

TEST(PipelineVariantTest, NoContextCollapsesKeys) {
  InvarNetXConfig config;
  config.use_operation_context = false;
  InvarNetX pipeline(config);
  auto normal = SimulateNormalRuns(WorkloadType::kWordCount, 4, 42);
  ASSERT_TRUE(
      pipeline.TrainContext(kContext, normal.value(), kVictim).ok());
  // Any context resolves to the same pooled model.
  EXPECT_TRUE(pipeline.HasContext(kContext));
  EXPECT_TRUE(pipeline.HasContext(
      OperationContext{WorkloadType::kSort, "10.0.0.9"}));
}

TEST(PipelineVariantTest, ArxEngineTrainsAndDiagnoses) {
  InvarNetXConfig config;
  config.engine = AssociationEngineType::kArx;
  InvarNetX pipeline(config);
  auto normal = SimulateNormalRuns(WorkloadType::kWordCount, 4, 42);
  ASSERT_TRUE(
      pipeline.TrainContext(kContext, normal.value(), kVictim).ok());
  auto run = SimulateFaultRun(WorkloadType::kWordCount,
                              faults::FaultType::kCpuHog, 77);
  ASSERT_TRUE(
      pipeline.AddSignature(kContext, "cpu-hog", run.value(), kVictim).ok());
  auto test_run = SimulateFaultRun(WorkloadType::kWordCount,
                                   faults::FaultType::kCpuHog, 78);
  Result<DiagnosisReport> report =
      pipeline.InferCause(kContext, test_run.value(), kVictim);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().causes.empty());
}

TEST(PipelineVariantTest, AddSignatureBeforeTrainingFails) {
  InvarNetX pipeline;
  auto run = SimulateFaultRun(WorkloadType::kWordCount,
                              faults::FaultType::kCpuHog, 5);
  EXPECT_FALSE(
      pipeline.AddSignature(kContext, "cpu-hog", run.value(), kVictim).ok());
}

// ----------------------------------------------------------------- eval --

TEST(EvaluateTest, VictimContextIp) {
  EvalConfig config;
  config.victim_node = 1;
  EXPECT_EQ(VictimContext(config).node_ip, "10.0.0.2");
  config.victim_node = 3;
  EXPECT_EQ(VictimContext(config).node_ip, "10.0.0.4");
}

TEST(EvaluateTest, FaultOutcomeMath) {
  FaultOutcome outcome;
  outcome.true_positives = 8;
  outcome.false_positives = 2;
  outcome.false_negatives = 2;
  EXPECT_DOUBLE_EQ(outcome.precision(), 0.8);
  EXPECT_DOUBLE_EQ(outcome.recall(), 0.8);
  FaultOutcome empty;
  EXPECT_DOUBLE_EQ(empty.precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.recall(), 0.0);
}

TEST(EvaluateTest, SmallCampaignProducesSaneNumbers) {
  EvalConfig config;
  config.workload = WorkloadType::kWordCount;
  config.normal_runs = 6;
  config.test_runs_per_fault = 2;
  config.faults = {faults::FaultType::kCpuHog, faults::FaultType::kMemHog,
                   faults::FaultType::kSuspend};
  Result<EvalResult> result = RunEvaluation(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().per_fault.size(), 3u);
  EXPECT_GE(result.value().avg_precision, 0.0);
  EXPECT_LE(result.value().avg_precision, 1.0);
  // Three very distinct faults at small scale: expect decent accuracy.
  EXPECT_GT(result.value().avg_recall, 0.5);
  // Tallies are complete: each fault accounts for every test run.
  for (const FaultOutcome& o : result.value().per_fault) {
    EXPECT_EQ(o.true_positives + o.false_negatives,
              config.test_runs_per_fault);
  }
}

}  // namespace
}  // namespace invarnetx::core
