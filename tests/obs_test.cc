// Tests for the self-observability layer: structured logging, the metrics
// registry, and stage-level trace spans - plus the registry wiring of the
// association score cache and the shared thread pool.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/assoc_cache.h"
#include "obs/journal.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace invarnetx {
namespace {

// Restores the global log level and sink on scope exit so tests cannot leak
// configuration into each other.
class ScopedLogCapture {
 public:
  ScopedLogCapture() : previous_level_(obs::GetLogLevel()) {
    obs::SetLogSink([this](obs::LogLevel level, const std::string& line) {
      levels_.push_back(level);
      lines_.push_back(line);
    });
  }
  ~ScopedLogCapture() {
    obs::SetLogSink(nullptr);
    obs::SetLogLevel(previous_level_);
  }

  const std::vector<std::string>& lines() const { return lines_; }
  const std::vector<obs::LogLevel>& levels() const { return levels_; }

 private:
  obs::LogLevel previous_level_;
  std::vector<obs::LogLevel> levels_;
  std::vector<std::string> lines_;
};

TEST(LogTest, LevelNamesRoundTrip) {
  for (obs::LogLevel level :
       {obs::LogLevel::kDebug, obs::LogLevel::kInfo, obs::LogLevel::kWarn,
        obs::LogLevel::kError, obs::LogLevel::kOff}) {
    Result<obs::LogLevel> parsed =
        obs::LogLevelFromName(obs::LogLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), level);
  }
  EXPECT_FALSE(obs::LogLevelFromName("verbose").ok());
  EXPECT_FALSE(obs::LogLevelFromName("").ok());
}

TEST(LogTest, LevelFiltering) {
  ScopedLogCapture capture;
  obs::SetLogLevel(obs::LogLevel::kWarn);
  obs::Log(obs::LogLevel::kDebug, "dropped");
  obs::Log(obs::LogLevel::kInfo, "dropped");
  obs::Log(obs::LogLevel::kWarn, "kept warn");
  obs::Log(obs::LogLevel::kError, "kept error");
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_EQ(capture.levels()[0], obs::LogLevel::kWarn);
  EXPECT_EQ(capture.levels()[1], obs::LogLevel::kError);

  obs::SetLogLevel(obs::LogLevel::kOff);
  obs::Log(obs::LogLevel::kError, "silenced");
  EXPECT_EQ(capture.lines().size(), 2u);
}

TEST(LogTest, StructuredLineFormat) {
  ScopedLogCapture capture;
  obs::SetLogLevel(obs::LogLevel::kInfo);
  obs::Log(obs::LogLevel::kInfo, "trained context",
           {{"context", "wordcount@10.0.0.2"},
            {"examples", 3},
            {"ratio", 0.5},
            {"ok", true}});
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& line = capture.lines()[0];
  EXPECT_NE(line.find("level=info"), std::string::npos);
  EXPECT_NE(line.find("msg=\"trained context\""), std::string::npos);
  // String values are quoted; numbers and booleans are bare.
  EXPECT_NE(line.find("context=\"wordcount@10.0.0.2\""), std::string::npos);
  EXPECT_NE(line.find("examples=3"), std::string::npos);
  EXPECT_NE(line.find("ok=true"), std::string::npos);
  EXPECT_EQ(line.rfind("ts=", 0), 0u) << line;
}

TEST(LogTest, QuotesAndEscapesStringValues) {
  const std::string line = obs::FormatLogLine(
      obs::LogLevel::kWarn, "weird \"message\"",
      {obs::LogField{"path", std::string("a\\b\"c\nd")}});
  EXPECT_NE(line.find("msg=\"weird \\\"message\\\"\""), std::string::npos);
  EXPECT_NE(line.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos);
}

TEST(LogTest, MacroSkipsArgumentEvaluationWhenDisabled) {
  ScopedLogCapture capture;
  obs::SetLogLevel(obs::LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return std::string("value");
  };
  INVARNETX_OBS_LOG(obs::LogLevel::kDebug, "msg", {{"k", expensive()}});
  EXPECT_EQ(evaluations, 0);
  INVARNETX_OBS_LOG(obs::LogLevel::kError, "msg", {{"k", expensive()}});
  EXPECT_EQ(evaluations, 1);
}

TEST(MetricsTest, CounterConcurrentIncrements) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(MetricsTest, GaugeSetAndConcurrentAdd) {
  obs::Gauge gauge;
  gauge.Set(5.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 5.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 1000; ++i) gauge.Add(0.5);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(gauge.value(), 5.0 + 4 * 1000 * 0.5);
}

TEST(MetricsTest, HistogramPercentiles) {
  obs::Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Percentile(0.5), 0.0);

  // 100 samples in a known ascending pattern: 1ms, 2ms, ..., 100ms.
  for (int i = 1; i <= 100; ++i) {
    histogram.Record(static_cast<double>(i) * 1e-3);
  }
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_NEAR(histogram.sum(), 5.050, 1e-9);
  // Percentiles are exact to within one exponential bucket: the bucket
  // holding the true quantile has bounds within a factor of two of it.
  const double p50 = histogram.Percentile(0.5);
  EXPECT_GE(p50, 0.025);
  EXPECT_LE(p50, 0.105);
  const double p99 = histogram.Percentile(0.99);
  EXPECT_GE(p99, 0.05);
  EXPECT_LE(p99, 0.21);
  EXPECT_LE(histogram.Percentile(0.5), histogram.Percentile(0.95));
  EXPECT_LE(histogram.Percentile(0.95), histogram.Percentile(0.99));

  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
}

TEST(MetricsTest, HistogramClampsNegativeAndOverflow) {
  obs::Histogram histogram;
  histogram.Record(-1.0);  // clamps to 0, still counted
  histogram.Record(1e12);  // overflow bucket
  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_GT(histogram.Percentile(0.99), 0.0);
}

TEST(MetricsTest, RegistryHandlesAreIdempotent) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.GetCounter("test.counter");
  obs::Counter& b = registry.GetCounter("test.counter");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g1 = registry.GetGauge("test.gauge");
  obs::Gauge& g2 = registry.GetGauge("test.gauge");
  EXPECT_EQ(&g1, &g2);
  EXPECT_TRUE(registry.HasGauge("test.gauge"));
  EXPECT_FALSE(registry.HasGauge("test.other"));

  a.Increment(3);
  const obs::MetricsRegistry::Snapshot snapshot = registry.Snap();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters.at("test.counter"), 3u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
}

TEST(MetricsTest, RenderTextAndJson) {
  obs::MetricsRegistry registry;
  registry.GetCounter("pipeline.train_calls").Increment(2);
  registry.GetGauge("threadpool.workers").Set(4.0);
  registry.GetHistogram("span.detect").Record(0.005);

  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("counter pipeline.train_calls 2"), std::string::npos);
  EXPECT_NE(text.find("gauge threadpool.workers 4"), std::string::npos);
  EXPECT_NE(text.find("histogram span.detect count=1"), std::string::npos);

  const std::string json = registry.RenderJson();
  EXPECT_TRUE(obs::ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"pipeline.train_calls\":2"), std::string::npos);

  registry.ResetAll();
  EXPECT_EQ(registry.Snap().counters.at("pipeline.train_calls"), 0u);
}

TEST(SpanTest, RecordsHistogramAlways) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
  const uint64_t before =
      registry.GetHistogram("span.obs_test_stage").count();
  {
    obs::Span span("obs_test_stage");
  }
  EXPECT_EQ(registry.GetHistogram("span.obs_test_stage").count(), before + 1);
}

TEST(SpanTest, EndIsIdempotentAndFreezesDuration) {
  obs::Span span("obs_test_end");
  span.End();
  const double first = span.Seconds();
  span.End();
  EXPECT_DOUBLE_EQ(span.Seconds(), first);
}

TEST(SpanTest, RecorderCapturesEventsOnlyWhenEnabled) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Shared();
  recorder.SetEnabled(false);
  recorder.Clear();
  {
    obs::Span span("obs_test_disabled");
  }
  EXPECT_EQ(recorder.NumEvents(), 0u);

  recorder.SetEnabled(true);
  {
    obs::Span span("obs_test_enabled", {{"context", "wordcount@10.0.0.2"}});
  }
  recorder.SetEnabled(false);
  const std::vector<obs::TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "obs_test_enabled");
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "context");
  recorder.Clear();
}

TEST(SpanTest, ChromeTraceRoundTrip) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Shared();
  recorder.Clear();
  recorder.SetEnabled(true);
  {
    obs::Span outer("outer", {{"k", "v with \"quotes\""}});
    obs::Span inner("inner");
  }
  recorder.SetEnabled(false);

  const std::string json = recorder.RenderChromeTrace();
  size_t num_events = 0;
  ASSERT_TRUE(obs::ValidateChromeTrace(json, &num_events).ok()) << json;
  EXPECT_EQ(num_events, 2u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  recorder.Clear();
}

TEST(SpanTest, WriteChromeTraceGoldenFile) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Shared();
  recorder.Clear();
  recorder.SetEnabled(true);
  {
    obs::Span span("golden_stage", {{"ticks", 60}});
  }
  recorder.SetEnabled(false);

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "invarnetx_obs_golden.json";
  ASSERT_TRUE(recorder.WriteChromeTrace(path.string()).ok());
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::ostringstream buffer;
  buffer << file.rdbuf();
  size_t num_events = 0;
  ASSERT_TRUE(obs::ValidateChromeTrace(buffer.str(), &num_events).ok());
  EXPECT_EQ(num_events, 1u);
  EXPECT_NE(buffer.str().find("golden_stage"), std::string::npos);
  std::filesystem::remove(path);
  recorder.Clear();
}

TEST(SpanTest, ValidatorRejectsMalformedDocuments) {
  size_t num_events = 0;
  EXPECT_FALSE(obs::ValidateChromeTrace("", &num_events).ok());
  EXPECT_FALSE(obs::ValidateChromeTrace("{", &num_events).ok());
  EXPECT_FALSE(obs::ValidateChromeTrace("[]", &num_events).ok());
  EXPECT_FALSE(
      obs::ValidateChromeTrace("{\"traceEvents\":{}}", &num_events).ok());
  EXPECT_FALSE(obs::ValidateJson("{\"a\":1,}").ok());
  EXPECT_TRUE(obs::ValidateJson("{\"a\":[1,2,{\"b\":null}]}").ok());
}

TEST(CacheMetricsTest, FlushAndEvictionCounters) {
  // One-entry shards: any second insert landing in an occupied shard flushes
  // it. 64 distinct keys over 16 shards guarantee collisions by pigeonhole.
  core::AssociationScoreCache cache(1);
  std::vector<double> base{1.0, 2.0, 3.0, 4.0};
  for (int i = 0; i < 64; ++i) {
    std::vector<double> y = base;
    y[0] = static_cast<double>(i);
    const core::PairScoreKey key = core::HashSeriesPair("mic", base, y);
    cache.Lookup(key);
    cache.Insert(key, 0.5);
  }
  EXPECT_EQ(cache.misses(), 64u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_GT(cache.flushes(), 0u);
  EXPECT_GT(cache.evicted(), 0u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.0);

  // A re-lookup of the last key hits (its shard was not flushed after it).
  std::vector<double> y = base;
  y[0] = 63.0;
  const core::PairScoreKey key = core::HashSeriesPair("mic", base, y);
  EXPECT_TRUE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_GT(cache.HitRate(), 0.0);
}

TEST(ThreadPoolMetricsTest, SharedPoolReportsTasksAndSingleWorkerGauge) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Shared();
  const uint64_t before =
      registry.GetCounter("threadpool.tasks_executed").value();

  // Force pool participation even on single-core machines.
  std::atomic<int> sum{0};
  ASSERT_TRUE(ParallelFor(64, 4, [&sum](size_t i) -> Status {
                sum.fetch_add(static_cast<int>(i));
                return Status::Ok();
              }).ok());
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
  // Runner tasks report their metrics after the caller's ParallelFor has
  // already returned (the caller can drain every index itself); give the
  // workers a bounded moment to finish accounting.
  obs::Counter& tasks = registry.GetCounter("threadpool.tasks_executed");
  for (int i = 0; i < 5000 && tasks.value() <= before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(tasks.value(), before);

  // Growing the pool repeatedly must update the one workers gauge, not
  // register duplicates.
  ThreadPool::Shared().EnsureSize(2);
  ThreadPool::Shared().EnsureSize(3);
  EXPECT_TRUE(registry.HasGauge("threadpool.workers"));
  EXPECT_FALSE(registry.HasGauge("threadpool.workers.1"));
  EXPECT_GE(registry.GetGauge("threadpool.workers").value(), 3.0);

  // Private pools stay out of the shared registry: the gauge tracks the
  // shared pool's size, and a throwaway pool must not overwrite it.
  const double shared_size = registry.GetGauge("threadpool.workers").value();
  {
    ThreadPool private_pool(8);
  }
  EXPECT_DOUBLE_EQ(registry.GetGauge("threadpool.workers").value(),
                   shared_size);
}

// ------------------------------------------------- labeled series --------

TEST(MetricsTest, SeriesKeySortsLabelKeysAndEscapesValues) {
  const obs::MetricLabels labels = {{"z", "quote\"q"},
                                    {"a", "back\\b"},
                                    {"m", "line\nn"}};
  EXPECT_EQ(obs::MetricsRegistry::SeriesKey("serve.x", labels),
            "serve.x{a=\"back\\\\b\",m=\"line\\nn\",z=\"quote\\\"q\"}");
  // No labels: the key is just the family name.
  EXPECT_EQ(obs::MetricsRegistry::SeriesKey("serve.x", {}), "serve.x");
}

TEST(MetricsTest, LabeledHandlesAreIdempotentAcrossKeyOrder) {
  obs::MetricsRegistry registry;
  obs::Counter& a =
      registry.GetCounter("serve.shard_samples", {{"shard", "3"}, {"w", "x"}});
  // Same labels in a different order name the same series.
  obs::Counter& b =
      registry.GetCounter("serve.shard_samples", {{"w", "x"}, {"shard", "3"}});
  EXPECT_EQ(&a, &b);
  // A different label value is its own series under the same family.
  obs::Counter& other =
      registry.GetCounter("serve.shard_samples", {{"shard", "4"}, {"w", "x"}});
  EXPECT_NE(&a, &other);
  // The unlabeled series is distinct from every labeled one.
  obs::Counter& bare = registry.GetCounter("serve.shard_samples");
  EXPECT_NE(&bare, &a);

  a.Increment(2);
  other.Increment(5);
  const auto snap = registry.Snap();
  EXPECT_EQ(snap.counters.at("serve.shard_samples{shard=\"3\",w=\"x\"}"), 2u);
  EXPECT_EQ(snap.counters.at("serve.shard_samples{shard=\"4\",w=\"x\"}"), 5u);
  EXPECT_EQ(snap.counters.at("serve.shard_samples"), 0u);
}

// --------------------------------------------- OpenMetrics exposition ----

TEST(MetricsTest, OpenMetricsExpositionIsValidAndWellFormed) {
  obs::MetricsRegistry registry;
  registry.SetHelp("serve.ticks", "Ticks ingested by the fleet");
  registry.GetCounter("serve.ticks").Increment(3);
  registry.GetCounter("serve.shard_samples", {{"shard", "0"}}).Increment(7);
  registry.GetCounter("serve.shard_samples", {{"shard", "1"}}).Increment(9);
  registry.GetGauge("serve.active_monitors").Set(2.5);
  obs::Histogram& hist = registry.GetHistogram("serve.ingest_seconds");
  hist.Record(0.001);
  hist.Record(0.002);
  hist.Record(1e12);  // lands in the overflow bucket; only +Inf counts it

  const std::string text = registry.RenderOpenMetrics();
  size_t samples = 0;
  const Status valid = obs::ValidateOpenMetrics(text, &samples);
  ASSERT_TRUE(valid.ok()) << valid.ToString() << "\n" << text;
  EXPECT_GT(samples, 0u);

  // Counters gain `_total`, dots become underscores, labels survive, and
  // the help text rides on the exported (suffixed) name.
  EXPECT_NE(text.find("# TYPE serve_ticks_total counter\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("# HELP serve_ticks_total Ticks ingested by the fleet\n"),
      std::string::npos);
  EXPECT_NE(text.find("serve_ticks_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("serve_shard_samples_total{shard=\"0\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_shard_samples_total{shard=\"1\"} 9\n"),
            std::string::npos);
  // One TYPE line per family even with several labeled series.
  const std::string type_line = "# TYPE serve_shard_samples_total counter\n";
  const size_t first = text.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(type_line, first + 1), std::string::npos);

  EXPECT_NE(text.find("# TYPE serve_active_monitors gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_active_monitors 2.5\n"), std::string::npos);

  // Histograms expand to cumulative buckets + _sum + _count, and +Inf
  // carries the overflow sample the finite buckets cannot.
  EXPECT_NE(text.find("# TYPE serve_ingest_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_ingest_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_ingest_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("serve_ingest_seconds_sum "), std::string::npos);

  // Rendering increments the registry's own export counter, so the scrape
  // observes itself.
  EXPECT_NE(text.find("obs_export_total 1\n"), std::string::npos);
  // The document terminates with the OpenMetrics EOF marker.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(MetricsTest, OpenMetricsValidatorRejectsCorruptedDocuments) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a.b").Increment();
  registry.GetHistogram("lat.s").Record(0.5);
  const std::string good = registry.RenderOpenMetrics();
  size_t n = 0;
  ASSERT_TRUE(obs::ValidateOpenMetrics(good, &n).ok());

  // Missing terminal # EOF.
  EXPECT_FALSE(
      obs::ValidateOpenMetrics(good.substr(0, good.rfind("# EOF")), &n).ok());
  // Content after # EOF.
  EXPECT_FALSE(obs::ValidateOpenMetrics(good + "late 1\n", &n).ok());
  // Duplicate series line.
  std::string dup = good;
  dup.insert(dup.rfind("# EOF"), "a_b_total 1\n");
  EXPECT_FALSE(obs::ValidateOpenMetrics(dup, &n).ok());
  // Sample with no # TYPE for its family.
  EXPECT_FALSE(obs::ValidateOpenMetrics("mystery 1\n# EOF\n", &n).ok());
  // Counter family must carry the _total suffix.
  EXPECT_FALSE(
      obs::ValidateOpenMetrics("# TYPE foo counter\nfoo 1\n# EOF\n", &n)
          .ok());
  // Histogram buckets must be cumulative and must include le="+Inf".
  EXPECT_FALSE(obs::ValidateOpenMetrics(
                   "# TYPE h histogram\n"
                   "h_bucket{le=\"0.1\"} 5\n"
                   "h_bucket{le=\"+Inf\"} 3\n"
                   "h_sum 1.0\nh_count 3\n# EOF\n",
                   &n)
                   .ok());
  EXPECT_FALSE(obs::ValidateOpenMetrics(
                   "# TYPE h histogram\n"
                   "h_bucket{le=\"0.1\"} 2\n"
                   "h_sum 1.0\nh_count 2\n# EOF\n",
                   &n)
                   .ok());
  // Malformed label block.
  EXPECT_FALSE(obs::ValidateOpenMetrics(
                   "# TYPE x_total counter\nx_total{shard=3} 1\n# EOF\n", &n)
                   .ok());
}

// ------------------------------------------------------ event journal ----

TEST(JournalTest, BoundedRingEvictsOldestAndSequenceSurvives) {
  obs::EventJournal journal(4);
  EXPECT_EQ(journal.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    journal.Record(obs::EventKind::kAlarm, "event " + std::to_string(i),
                   {{"i", i}});
  }
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.evicted(), 6u);
  EXPECT_EQ(journal.next_seq(), 10u);

  const std::vector<obs::Event> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, and sequence numbers survive eviction untouched.
  EXPECT_EQ(events.front().seq, 6u);
  EXPECT_EQ(events.back().seq, 9u);
  EXPECT_EQ(events.back().message, "event 9");

  const std::vector<obs::Event> tail = journal.Snapshot(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail.front().seq, 8u);
  EXPECT_EQ(tail.back().seq, 9u);

  journal.Reset();
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.evicted(), 0u);
  EXPECT_TRUE(journal.Snapshot().empty());
}

TEST(JournalTest, RenderTextAndJsonRoundTrip) {
  obs::EventJournal journal(8);
  journal.Record(obs::EventKind::kEpochPublish, "published \"v2\"",
                 {obs::LogField("context", "wordcount@10.0.0.2"),
                  obs::LogField("epoch", 3)});
  journal.Record(obs::EventKind::kAlarmStorm, "alarm storm started",
                 {obs::LogField("alarms_in_window", 9)});
  const std::vector<obs::Event> events = journal.Snapshot();

  const std::string text = obs::RenderEventsText(events);
  EXPECT_NE(text.find("kind=epoch_publish"), std::string::npos);
  EXPECT_NE(text.find("msg=\"published \\\"v2\\\"\""), std::string::npos);
  EXPECT_NE(text.find("context=\"wordcount@10.0.0.2\""), std::string::npos);
  EXPECT_NE(text.find("epoch=3"), std::string::npos);
  EXPECT_NE(text.find("kind=alarm_storm"), std::string::npos);

  const std::string json = obs::RenderEventsJson(events);
  ASSERT_TRUE(obs::ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"kind\": \"epoch_publish\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch\": 3"), std::string::npos);
}

TEST(JournalTest, RecordMirrorsToDebugLog) {
  ScopedLogCapture capture;
  obs::SetLogLevel(obs::LogLevel::kDebug);
  obs::EventJournal journal(4);
  journal.Record(obs::EventKind::kDiagnosis, "diagnosis done");
  bool mirrored = false;
  for (const std::string& line : capture.lines()) {
    if (line.find("diagnosis done") != std::string::npos &&
        line.find("event=\"diagnosis\"") != std::string::npos) {
      mirrored = true;
    }
  }
  EXPECT_TRUE(mirrored);
}

// -------------------------------------------------- slow-span sampler ----

TEST(SpanTest, SlowSpanSamplerKeepsSlowestPerStage) {
  obs::SlowSpanSampler sampler(2);
  for (uint64_t dur : {5u, 1u, 9u, 3u, 7u}) {
    obs::TraceEvent event;
    event.name = "detect";
    event.dur_us = dur;
    sampler.Offer(event);
  }
  obs::TraceEvent other;
  other.name = "diagnose";
  other.dur_us = 100;
  other.args = {{"context", "wordcount@10.0.0.2"}};
  sampler.Offer(other);

  EXPECT_EQ(sampler.offered(), 6u);
  const std::vector<obs::TraceEvent> kept = sampler.Snapshot();
  // Two detect spans (the slowest two) plus the lone diagnose span,
  // grouped by stage name in sorted order, slowest first within a stage.
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].name, "detect");
  EXPECT_EQ(kept[0].dur_us, 9u);
  EXPECT_EQ(kept[1].dur_us, 7u);
  EXPECT_EQ(kept[2].name, "diagnose");

  const std::string text = sampler.RenderText();
  EXPECT_NE(text.find("detect"), std::string::npos);
  EXPECT_NE(text.find("diagnose"), std::string::npos);
  EXPECT_NE(text.find("wordcount@10.0.0.2"), std::string::npos);

  sampler.Clear();
  EXPECT_EQ(sampler.offered(), 0u);
  EXPECT_TRUE(sampler.Snapshot().empty());
}

TEST(SpanTest, EndedSpansFeedTheSharedSampler) {
  const uint64_t before = obs::SlowSpanSampler::Shared().offered();
  {
    obs::Span span("sampler_feed_test", {{"k", "v"}});
  }
  EXPECT_GT(obs::SlowSpanSampler::Shared().offered(), before);
}

}  // namespace
}  // namespace invarnetx
