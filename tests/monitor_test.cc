// Tests for the deployment-facing components: FIFO job sequences, the
// streaming OnlineMonitor (with its per-job model selection), and the
// cluster-wide culprit scan.

#include <gtest/gtest.h>

#include "core/cluster_diagnosis.h"
#include "core/evaluate.h"
#include "core/monitor.h"
#include "workload/sequence.h"

namespace invarnetx {
namespace {

using core::InvarNetX;
using core::OperationContext;
using workload::WorkloadType;

// ------------------------------------------------------------- sequences --

TEST(JobSequenceTest, RunsJobsInOrder) {
  telemetry::SequenceConfig config;
  config.jobs = {WorkloadType::kGrep, WorkloadType::kWordCount};
  config.seed = 3;
  Result<telemetry::RunTrace> trace = telemetry::SimulateJobSequence(config);
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace.value().job_spans.size(), 2u);
  const auto& spans = trace.value().job_spans;
  EXPECT_EQ(spans[0].type, WorkloadType::kGrep);
  EXPECT_EQ(spans[1].type, WorkloadType::kWordCount);
  EXPECT_EQ(spans[0].start_tick, 0);
  EXPECT_GT(spans[0].end_tick, 10);
  EXPECT_GE(spans[1].start_tick, spans[0].end_tick);
  EXPECT_GT(spans[1].end_tick, spans[1].start_tick + 10);
  EXPECT_TRUE(trace.value().finished);
}

TEST(JobSequenceTest, RejectsInteractiveJobs) {
  telemetry::SequenceConfig config;
  config.jobs = {WorkloadType::kGrep, WorkloadType::kTpcDs};
  EXPECT_FALSE(telemetry::SimulateJobSequence(config).ok());
}

TEST(JobSequenceTest, RejectsEmptyQueue) {
  telemetry::SequenceConfig config;
  EXPECT_FALSE(telemetry::SimulateJobSequence(config).ok());
}

TEST(JobSequenceTest, SpansCoverDistinctDemandRegimes) {
  // Grep is IO-heavy, WordCount CPU-heavy: the victim's cpu_user must be
  // visibly higher inside the WordCount span.
  telemetry::SequenceConfig config;
  config.jobs = {WorkloadType::kGrep, WorkloadType::kWordCount};
  config.seed = 4;
  const telemetry::RunTrace trace =
      telemetry::SimulateJobSequence(config).value();
  const auto& spans = trace.job_spans;
  const auto& cpu = trace.nodes[1].metrics[telemetry::kCpuUserPct];
  auto mean_over = [&](int start, int end) {
    double acc = 0.0;
    for (int t = start; t < end; ++t) acc += cpu[static_cast<size_t>(t)];
    return acc / (end - start);
  };
  // Skip each span's first/last few ticks (ramps).
  const double grep_cpu = mean_over(spans[0].start_tick + 3,
                                    spans[0].end_tick - 3);
  const double wc_cpu = mean_over(spans[1].start_tick + 3,
                                  spans[1].end_tick - 3);
  EXPECT_GT(wc_cpu, grep_cpu + 10.0);
}

TEST(JobSequenceTest, DirectModelInterface) {
  Rng rng(5);
  cluster::Cluster testbed = cluster::Cluster::MakeTestbed();
  workload::JobSequenceModel sequence({WorkloadType::kGrep}, testbed, &rng);
  EXPECT_EQ(sequence.current_job(), -1);
  EXPECT_FALSE(sequence.Finished());
  sequence.Step(0, &testbed, &rng);
  EXPECT_EQ(sequence.current_job(), 0);
  ASSERT_EQ(sequence.spans().size(), 1u);
  EXPECT_EQ(sequence.spans()[0].end_tick, -1);  // in flight
}

// ------------------------------------------------------- online monitor --

class OnlineMonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new InvarNetX();
    auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 8, 42);
    ASSERT_TRUE(pipeline_
                    ->TrainContext(
                        OperationContext{WorkloadType::kWordCount,
                                         "10.0.0.2"},
                        normal.value(), 1)
                    .ok());
    for (uint64_t rep = 0; rep < 2; ++rep) {
      auto run = core::SimulateFaultRun(WorkloadType::kWordCount,
                                        faults::FaultType::kCpuHog,
                                        900 + rep);
      ASSERT_TRUE(pipeline_
                      ->AddSignature(OperationContext{
                                         WorkloadType::kWordCount,
                                         "10.0.0.2"},
                                     "cpu-hog", run.value(), 1)
                      .ok());
    }
  }
  static void TearDownTestSuite() { delete pipeline_; }

  // Streams a trace's victim node through a monitor.
  static void Stream(core::OnlineMonitor* monitor,
                     const telemetry::RunTrace& trace) {
    const auto& node = trace.nodes[1];
    for (size_t t = 0; t < node.cpi.size(); ++t) {
      std::array<double, telemetry::kNumMetrics> metrics{};
      for (int m = 0; m < telemetry::kNumMetrics; ++m) {
        metrics[static_cast<size_t>(m)] =
            node.metrics[static_cast<size_t>(m)][t];
      }
      ASSERT_TRUE(monitor->Observe(node.cpi[t], metrics).ok());
    }
  }

  static InvarNetX* pipeline_;
};

InvarNetX* OnlineMonitorTest::pipeline_ = nullptr;

TEST_F(OnlineMonitorTest, RequiresActiveJob) {
  core::OnlineMonitor monitor(pipeline_);
  EXPECT_FALSE(monitor.job_active());
  std::array<double, telemetry::kNumMetrics> metrics{};
  EXPECT_FALSE(monitor.Observe(1.0, metrics).ok());
  EXPECT_FALSE(monitor.Diagnose().ok());
}

TEST_F(OnlineMonitorTest, StartJobRequiresTrainedContext) {
  core::OnlineMonitor monitor(pipeline_);
  EXPECT_FALSE(
      monitor.StartJob(OperationContext{WorkloadType::kSort, "10.0.0.2"})
          .ok());
  EXPECT_TRUE(
      monitor
          .StartJob(OperationContext{WorkloadType::kWordCount, "10.0.0.2"})
          .ok());
  EXPECT_TRUE(monitor.job_active());
}

TEST_F(OnlineMonitorTest, QuietOnNormalStream) {
  core::OnlineMonitor monitor(pipeline_);
  ASSERT_TRUE(
      monitor
          .StartJob(OperationContext{WorkloadType::kWordCount, "10.0.0.2"})
          .ok());
  auto clean = core::SimulateNormalRuns(WorkloadType::kWordCount, 1, 777);
  Stream(&monitor, clean.value()[0]);
  EXPECT_FALSE(monitor.alarm_active());
  EXPECT_GT(monitor.ticks_observed(), 20);
}

TEST_F(OnlineMonitorTest, AlarmsAndDiagnosesFaultStream) {
  core::OnlineMonitor monitor(pipeline_);
  ASSERT_TRUE(
      monitor
          .StartJob(OperationContext{WorkloadType::kWordCount, "10.0.0.2"})
          .ok());
  auto faulty = core::SimulateFaultRun(WorkloadType::kWordCount,
                                       faults::FaultType::kCpuHog, 888);
  Stream(&monitor, faulty.value());
  EXPECT_TRUE(monitor.alarm_active());
  EXPECT_GE(monitor.first_alarm_tick(), 8);  // fault starts at tick 8
  Result<core::DiagnosisReport> report = monitor.Diagnose();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().anomaly_detected);
  EXPECT_EQ(report.value().first_alarm_tick, monitor.first_alarm_tick());
  ASSERT_FALSE(report.value().causes.empty());
  EXPECT_EQ(report.value().causes[0].problem, "cpu-hog");
}

TEST_F(OnlineMonitorTest, StartJobClearsAlarmLatch) {
  core::OnlineMonitor monitor(pipeline_);
  const OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  ASSERT_TRUE(monitor.StartJob(context).ok());
  auto faulty = core::SimulateFaultRun(WorkloadType::kWordCount,
                                       faults::FaultType::kCpuHog, 889);
  Stream(&monitor, faulty.value());
  ASSERT_TRUE(monitor.alarm_active());
  ASSERT_TRUE(monitor.StartJob(context).ok());
  EXPECT_FALSE(monitor.alarm_active());
  EXPECT_EQ(monitor.ticks_observed(), 0);
  EXPECT_EQ(monitor.first_alarm_tick(), -1);
}

TEST_F(OnlineMonitorTest, DiagnoseBeforeAnyTickFails) {
  core::OnlineMonitor monitor(pipeline_);
  ASSERT_TRUE(
      monitor
          .StartJob(OperationContext{WorkloadType::kWordCount, "10.0.0.2"})
          .ok());
  // Job armed but nothing observed yet: no window to infer from.
  EXPECT_FALSE(monitor.Diagnose().ok());
  std::array<double, telemetry::kNumMetrics> metrics{};
  ASSERT_TRUE(monitor.Observe(1.0, metrics).ok());
  EXPECT_TRUE(monitor.Diagnose().ok());
}

TEST_F(OnlineMonitorTest, ReArmMidJobResetsWindowAndStaysActive) {
  core::OnlineMonitor monitor(pipeline_);
  const OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  ASSERT_TRUE(monitor.StartJob(context).ok());
  auto clean = core::SimulateNormalRuns(WorkloadType::kWordCount, 1, 779);
  Stream(&monitor, clean.value()[0]);
  ASSERT_GT(monitor.ticks_observed(), 0);
  // The next job arrives before the previous one "finished": re-arming
  // mid-job is the FIFO deployment loop's normal case.
  ASSERT_TRUE(monitor.StartJob(context).ok());
  EXPECT_TRUE(monitor.job_active());
  EXPECT_EQ(monitor.ticks_observed(), 0);
  EXPECT_EQ(monitor.window_ticks(), 0);
  EXPECT_FALSE(monitor.alarm_active());
}

TEST_F(OnlineMonitorTest, AlarmDoesNotLeakAcrossJobs) {
  core::OnlineMonitor monitor(pipeline_);
  const OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  ASSERT_TRUE(monitor.StartJob(context).ok());
  auto faulty = core::SimulateFaultRun(WorkloadType::kWordCount,
                                       faults::FaultType::kCpuHog, 890);
  Stream(&monitor, faulty.value());
  ASSERT_TRUE(monitor.alarm_active());
  // Next job: a clean stream must not inherit the previous job's alarm.
  ASSERT_TRUE(monitor.StartJob(context).ok());
  auto clean = core::SimulateNormalRuns(WorkloadType::kWordCount, 1, 780);
  Stream(&monitor, clean.value()[0]);
  EXPECT_FALSE(monitor.alarm_active());
  EXPECT_EQ(monitor.first_alarm_tick(), -1);
}

TEST_F(OnlineMonitorTest, RetrainWhileActiveKeepsThePinnedEpoch) {
  // Private pipeline: this test retrains it while a job is active.
  InvarNetX pipeline;
  const OperationContext context{WorkloadType::kWordCount, "10.0.0.2"};
  auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 6, 45);
  ASSERT_TRUE(pipeline.TrainContext(context, normal.value(), 1).ok());

  core::OnlineMonitor monitor(&pipeline);
  ASSERT_TRUE(monitor.StartJob(context).ok());
  ASSERT_EQ(monitor.model_epoch(), 1u);
  auto faulty = core::SimulateFaultRun(WorkloadType::kWordCount,
                                       faults::FaultType::kCpuHog, 891);
  Stream(&monitor, faulty.value());

  // Retrain mid-job: the pipeline publishes epoch 2, the armed monitor
  // keeps detecting and diagnosing against its pinned epoch-1 snapshot.
  ASSERT_TRUE(pipeline.TrainContext(context, normal.value(), 1).ok());
  EXPECT_EQ(pipeline.GetContext(context).value()->epoch, 2u);
  EXPECT_EQ(monitor.model_epoch(), 1u);
  Result<core::DiagnosisReport> report = monitor.Diagnose();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().anomaly_detected);
  // Only the next StartJob adopts the new epoch.
  ASSERT_TRUE(monitor.StartJob(context).ok());
  EXPECT_EQ(monitor.model_epoch(), 2u);
}

TEST_F(OnlineMonitorTest, BoundedWindowKeepsAbsoluteAlarmTick) {
  core::OnlineMonitor::Options options;
  options.window_capacity = 16;
  core::OnlineMonitor monitor(pipeline_, options);
  ASSERT_TRUE(
      monitor
          .StartJob(OperationContext{WorkloadType::kWordCount, "10.0.0.2"})
          .ok());
  auto faulty = core::SimulateFaultRun(WorkloadType::kWordCount,
                                       faults::FaultType::kCpuHog, 888);
  Stream(&monitor, faulty.value());
  const int total = static_cast<int>(faulty.value().nodes[1].cpi.size());
  ASSERT_GT(total, 16);
  EXPECT_EQ(monitor.ticks_observed(), total);
  EXPECT_EQ(monitor.window_ticks(), 16);
  ASSERT_TRUE(monitor.alarm_active());
  // The alarm fired long before the current window's left edge; the latch
  // still reports it in absolute job ticks.
  EXPECT_GE(monitor.first_alarm_tick(), 8);
  EXPECT_LT(monitor.first_alarm_tick(),
            static_cast<int>(monitor.window().start_tick()));
  // Diagnosis runs over the bounded window only, and still works.
  Result<core::DiagnosisReport> report = monitor.Diagnose();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().anomaly_detected);
  EXPECT_EQ(report.value().first_alarm_tick, monitor.first_alarm_tick());
}

// ------------------------------------------------------- cluster scan ----

TEST(ClusterDiagnosisTest, LocalizesTheFaultyNode) {
  InvarNetX pipeline;
  auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 8, 42);
  for (size_t node = 1; node <= 4; ++node) {
    const OperationContext context{
        WorkloadType::kWordCount, "10.0.0." + std::to_string(node + 1)};
    ASSERT_TRUE(pipeline.TrainContext(context, normal.value(), node).ok());
  }
  for (uint64_t rep = 0; rep < 2; ++rep) {
    auto run = core::SimulateFaultRun(WorkloadType::kWordCount,
                                      faults::FaultType::kMemHog, 700 + rep);
    ASSERT_TRUE(pipeline
                    .AddSignature(OperationContext{WorkloadType::kWordCount,
                                                   "10.0.0.2"},
                                  "mem-hog", run.value(), 1)
                    .ok());
  }
  auto incident = core::SimulateFaultRun(WorkloadType::kWordCount,
                                         faults::FaultType::kMemHog, 999);
  Result<core::ClusterDiagnosis> scan =
      core::DiagnoseCluster(pipeline, incident.value());
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.value().nodes.size(), 4u);
  ASSERT_TRUE(scan.value().AnyAnomaly());
  // The fault targets node 1 (10.0.0.2).
  EXPECT_EQ(scan.value().nodes[static_cast<size_t>(scan.value().culprit)]
                .node_ip,
            "10.0.0.2");
  for (const core::NodeDiagnosis& entry : scan.value().nodes) {
    EXPECT_TRUE(entry.context_trained);
  }
}

TEST(ClusterDiagnosisTest, UntrainedNodesAreSkippedNotFatal) {
  InvarNetX pipeline;
  auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 4, 42);
  // Only node 1's context is trained.
  ASSERT_TRUE(pipeline
                  .TrainContext(OperationContext{WorkloadType::kWordCount,
                                                 "10.0.0.2"},
                                normal.value(), 1)
                  .ok());
  auto clean = core::SimulateNormalRuns(WorkloadType::kWordCount, 1, 55);
  Result<core::ClusterDiagnosis> scan =
      core::DiagnoseCluster(pipeline, clean.value()[0]);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.value().nodes[0].context_trained);
  EXPECT_FALSE(scan.value().nodes[1].context_trained);
  EXPECT_FALSE(scan.value().AnyAnomaly());
}

TEST(ClusterDiagnosisTest, RejectsEmptyTrace) {
  InvarNetX pipeline;
  telemetry::RunTrace empty;
  EXPECT_FALSE(core::DiagnoseCluster(pipeline, empty).ok());
}

}  // namespace
}  // namespace invarnetx
