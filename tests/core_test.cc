#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/anomaly.h"
#include "core/association.h"
#include "core/invariants.h"
#include "core/perf_model.h"
#include "core/sigdb.h"
#include "telemetry/metrics.h"

namespace invarnetx::core {
namespace {

std::vector<double> StableCpiTrace(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  double level = 1.0;
  for (int i = 0; i < n; ++i) {
    level = 0.3 + 0.7 * level + rng.Gaussian(0.0, 0.01);
    out.push_back(level);
  }
  return out;
}

// -------------------------------------------------------------- PerfModel --

TEST(PerfModelTest, TrainNeedsTraces) {
  EXPECT_FALSE(PerformanceModel::Train({}).ok());
}

TEST(PerfModelTest, ThresholdOrdering) {
  std::vector<std::vector<double>> traces;
  for (int i = 0; i < 5; ++i) traces.push_back(StableCpiTrace(60, 10 + i));
  Result<PerformanceModel> model = PerformanceModel::Train(traces);
  ASSERT_TRUE(model.ok());
  const PerformanceModel& m = model.value();
  EXPECT_GT(m.residual_max(), m.residual_p95());
  EXPECT_GT(m.residual_p95(), m.residual_min());
  EXPECT_GE(m.residual_min(), 0.0);
  // beta-max = 1.2 * max.
  EXPECT_NEAR(m.Threshold(ThresholdRule::kBetaMax), 1.2 * m.residual_max(),
              1e-12);
  EXPECT_DOUBLE_EQ(m.Threshold(ThresholdRule::kMaxMin), m.residual_max());
  EXPECT_DOUBLE_EQ(m.Threshold(ThresholdRule::k95Percentile),
                   m.residual_p95());
}

TEST(PerfModelTest, RuleNames) {
  EXPECT_EQ(ThresholdRuleName(ThresholdRule::kMaxMin), "max-min");
  EXPECT_EQ(ThresholdRuleName(ThresholdRule::k95Percentile), "95-percentile");
  EXPECT_EQ(ThresholdRuleName(ThresholdRule::kBetaMax), "beta-max");
}

TEST(PerfModelTest, FromPartsPreservesValues) {
  const PerformanceModel model =
      PerformanceModel::FromParts(ts::ArimaModel(), 0.01, 0.2, 0.1, 1.5);
  EXPECT_DOUBLE_EQ(model.residual_min(), 0.01);
  EXPECT_DOUBLE_EQ(model.residual_max(), 0.2);
  EXPECT_DOUBLE_EQ(model.residual_p95(), 0.1);
  EXPECT_DOUBLE_EQ(model.Threshold(ThresholdRule::kBetaMax), 0.3);
}

// ---------------------------------------------------------------- Anomaly --

PerformanceModel TrainedModel(uint64_t seed = 1) {
  std::vector<std::vector<double>> traces;
  for (int i = 0; i < 8; ++i) {
    traces.push_back(StableCpiTrace(60, seed * 100 + i));
  }
  return PerformanceModel::Train(traces).value();
}

TEST(AnomalyTest, QuietOnNormalData) {
  const PerformanceModel model = TrainedModel();
  AnomalyDetector detector(model, ThresholdRule::kBetaMax);
  const AnomalyScan scan = detector.Scan(StableCpiTrace(80, 999));
  EXPECT_FALSE(scan.triggered());
}

TEST(AnomalyTest, FiresOnSustainedDisturbance) {
  const PerformanceModel model = TrainedModel();
  std::vector<double> series = StableCpiTrace(80, 999);
  // Bursty CPI inflation from tick 40 on.
  Rng rng(5);
  for (size_t t = 40; t < series.size(); ++t) {
    series[t] *= 1.4 + 0.4 * rng.Uniform();
  }
  AnomalyDetector detector(model, ThresholdRule::kBetaMax);
  const AnomalyScan scan = detector.Scan(series);
  ASSERT_TRUE(scan.triggered());
  EXPECT_GE(scan.first_alarm_tick, 40);
  EXPECT_LE(scan.first_alarm_tick, 50);
}

TEST(AnomalyTest, MaxMinRuleIgnoresBetterThanTrainedResiduals) {
  // Pins the kMaxMin decision (see DESIGN.md): residuals are absolute
  // prediction errors, so a residual *below* the training-time min(R)
  // means the forecast fits better than it ever did during calibration -
  // not an anomaly. Only the upper bar of the [min(R), max(R)] band may
  // raise the alarm.
  const PerformanceModel model = TrainedModel();
  ASSERT_GT(model.residual_min(), 0.0);

  // A perfectly flat series: after the predictor converges its residuals
  // drop below min(R) and stay there, which a symmetric band rule would
  // flag as a sustained "anomaly".
  AnomalyDetector detector(model, ThresholdRule::kMaxMin);
  const std::vector<double> flat(80, 1.0);
  EXPECT_FALSE(detector.Scan(flat).triggered());

  // The upper bar still works: sustained inflation must alarm.
  std::vector<double> series = StableCpiTrace(80, 999);
  Rng rng(5);
  for (size_t t = 40; t < series.size(); ++t) {
    series[t] *= 1.4 + 0.4 * rng.Uniform();
  }
  AnomalyDetector upper(model, ThresholdRule::kMaxMin);
  EXPECT_TRUE(upper.Scan(series).triggered());
}

TEST(AnomalyTest, DebounceRequiresConsecutiveExceedances) {
  const PerformanceModel model = TrainedModel();
  std::vector<double> series = StableCpiTrace(80, 999);
  series[40] *= 2.0;  // one isolated spike
  AnomalyDetector detector(model, ThresholdRule::kBetaMax, 3);
  EXPECT_FALSE(detector.Scan(series).triggered());
  // With a 1-tick requirement the same spike trips the alarm.
  AnomalyDetector eager(model, ThresholdRule::kBetaMax, 1);
  EXPECT_TRUE(eager.Scan(series).triggered());
}

TEST(AnomalyTest, ResetClearsStreak) {
  const PerformanceModel model = TrainedModel();
  AnomalyDetector detector(model, ThresholdRule::kBetaMax, 3);
  std::vector<double> warm = StableCpiTrace(20, 4);
  for (double v : warm) detector.Observe(v);
  detector.Observe(warm.back() * 2.0);
  detector.Observe(warm.back() * 0.5);
  EXPECT_GT(detector.consecutive_count(), 0);
  detector.Reset();
  EXPECT_EQ(detector.consecutive_count(), 0);
}

TEST(AnomalyTest, ScanOutputsAligned) {
  const PerformanceModel model = TrainedModel();
  AnomalyDetector detector(model, ThresholdRule::k95Percentile);
  const std::vector<double> series = StableCpiTrace(50, 999);
  const AnomalyScan scan = detector.Scan(series);
  EXPECT_EQ(scan.residuals.size(), series.size());
  EXPECT_EQ(scan.raw_flags.size(), series.size());
  EXPECT_EQ(scan.alarms.size(), series.size());
}

// ------------------------------------------------------------ Association --

telemetry::NodeTrace MakeNodeTrace(int ticks, uint64_t seed) {
  Rng rng(seed);
  telemetry::NodeTrace node;
  node.ip = "10.0.0.2";
  for (int t = 0; t < ticks; ++t) {
    const double driver = std::sin(t * 0.2) + rng.Gaussian(0.0, 0.05);
    node.cpi.push_back(1.0 + 0.05 * driver);
    for (int m = 0; m < telemetry::kNumMetrics; ++m) {
      // All metrics follow the common driver with metric-specific gain.
      node.metrics[static_cast<size_t>(m)].push_back(
          10.0 + (m + 1) * driver + rng.Gaussian(0.0, 0.1));
    }
  }
  return node;
}

TEST(AssociationTest, EngineFactory) {
  EXPECT_EQ(AssociationEngine::Make(AssociationEngineType::kMic)->name(),
            "mic");
  EXPECT_EQ(AssociationEngine::Make(AssociationEngineType::kArx)->name(),
            "arx");
  EXPECT_EQ(AssociationEngineName(AssociationEngineType::kMic), "mic");
  EXPECT_EQ(AssociationEngineName(AssociationEngineType::kArx), "arx");
}

TEST(AssociationTest, MatrixShapeAndRange) {
  const telemetry::NodeTrace node = MakeNodeTrace(60, 3);
  const auto engine = AssociationEngine::Make(AssociationEngineType::kMic);
  Result<AssociationMatrix> matrix = ComputeAssociationMatrix(node, *engine);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix.value().size(),
            static_cast<size_t>(telemetry::kNumMetricPairs));
  for (double v : matrix.value()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(AssociationTest, CoupledMetricsScoreHigh) {
  const telemetry::NodeTrace node = MakeNodeTrace(80, 4);
  const auto engine = AssociationEngine::Make(AssociationEngineType::kMic);
  const AssociationMatrix matrix =
      ComputeAssociationMatrix(node, *engine).value();
  // All metrics share one driver, so a randomly picked pair scores high.
  EXPECT_GT(matrix[static_cast<size_t>(telemetry::PairIndex(0, 5))], 0.5);
  EXPECT_GT(matrix[static_cast<size_t>(telemetry::PairIndex(3, 20))], 0.5);
}

TEST(AssociationTest, ConstantSeriesScoreZero) {
  telemetry::NodeTrace node = MakeNodeTrace(60, 5);
  std::fill(node.metrics[0].begin(), node.metrics[0].end(), 7.0);
  const auto engine = AssociationEngine::Make(AssociationEngineType::kMic);
  const AssociationMatrix matrix =
      ComputeAssociationMatrix(node, *engine).value();
  EXPECT_DOUBLE_EQ(matrix[static_cast<size_t>(telemetry::PairIndex(0, 1))],
                   0.0);
}

// -------------------------------------------------------------- Invariants --

TEST(InvariantsTest, RequiresTwoRuns) {
  EXPECT_FALSE(BuildInvariants({AssociationMatrix(10, 0.5)}).ok());
}

TEST(InvariantsTest, RejectsMismatchedSizes) {
  EXPECT_FALSE(BuildInvariants(
                   {AssociationMatrix(10, 0.5), AssociationMatrix(9, 0.5)})
                   .ok());
}

TEST(InvariantsTest, StabilityFilter) {
  // Pair 0 stable at ~0.8, pair 1 swings 0.2..0.7, pair 2 stable at 0.
  std::vector<AssociationMatrix> runs;
  for (int i = 0; i < 5; ++i) {
    AssociationMatrix m(3, 0.0);
    m[0] = 0.8 + 0.01 * i;
    m[1] = i % 2 == 0 ? 0.2 : 0.7;
    m[2] = 0.0;
    runs.push_back(m);
  }
  Result<InvariantSet> set = BuildInvariants(runs, 0.2);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set.value().present[0], 1);
  EXPECT_EQ(set.value().present[1], 0);
  EXPECT_EQ(set.value().present[2], 1);
  EXPECT_EQ(set.value().NumInvariants(), 2);
  // Algorithm 1 stores the max of V(m, n).
  EXPECT_DOUBLE_EQ(set.value().values[0], 0.84);
  EXPECT_EQ(set.value().PairIndices(), (std::vector<int>{0, 2}));
}

TEST(InvariantsTest, ViolationTuple) {
  InvariantSet set;
  set.present = {1, 0, 1, 1};
  set.values = {0.8, 0.0, 0.1, 0.5};
  AssociationMatrix abnormal = {0.3, 0.9, 0.15, 0.45};
  Result<std::vector<uint8_t>> tuple =
      ComputeViolationTuple(set, abnormal, 0.2);
  ASSERT_TRUE(tuple.ok());
  // Non-invariant pair 1 contributes no bit; |0.8-0.3|=0.5 violates,
  // |0.1-0.15| and |0.5-0.45| do not.
  EXPECT_EQ(tuple.value(), (std::vector<uint8_t>{1, 0, 0}));
}

TEST(InvariantsTest, ViolationTupleSizeMismatch) {
  InvariantSet set;
  set.present = {1, 1};
  set.values = {0.5, 0.5};
  EXPECT_FALSE(ComputeViolationTuple(set, AssociationMatrix(3, 0.0)).ok());
}

// ------------------------------------------------------------------ SigDb --

TEST(SimilarityTest, IdenticalTuplesScoreOne) {
  const std::vector<uint8_t> a = {1, 0, 1, 1, 0};
  for (SimilarityMetric metric :
       {SimilarityMetric::kJaccard, SimilarityMetric::kDice,
        SimilarityMetric::kCosine, SimilarityMetric::kHamming}) {
    EXPECT_DOUBLE_EQ(TupleSimilarity(a, a, metric).value(), 1.0)
        << SimilarityMetricName(metric);
  }
}

TEST(SimilarityTest, DisjointTuples) {
  const std::vector<uint8_t> a = {1, 1, 0, 0};
  const std::vector<uint8_t> b = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(
      TupleSimilarity(a, b, SimilarityMetric::kJaccard).value(), 0.0);
  EXPECT_DOUBLE_EQ(TupleSimilarity(a, b, SimilarityMetric::kDice).value(),
                   0.0);
  EXPECT_DOUBLE_EQ(
      TupleSimilarity(a, b, SimilarityMetric::kHamming).value(), 0.0);
}

TEST(SimilarityTest, KnownJaccardValue) {
  const std::vector<uint8_t> a = {1, 1, 0, 0};
  const std::vector<uint8_t> b = {1, 0, 1, 0};
  // intersection 1, union 3.
  EXPECT_NEAR(TupleSimilarity(a, b, SimilarityMetric::kJaccard).value(),
              1.0 / 3.0, 1e-12);
  // dice: 2*1/(2+2) = 0.5
  EXPECT_NEAR(TupleSimilarity(a, b, SimilarityMetric::kDice).value(), 0.5,
              1e-12);
  // hamming: 2 equal positions of 4.
  EXPECT_NEAR(TupleSimilarity(a, b, SimilarityMetric::kHamming).value(), 0.5,
              1e-12);
}

TEST(SimilarityTest, AllZeroTuplesAreIdentical) {
  const std::vector<uint8_t> zero(5, 0);
  EXPECT_DOUBLE_EQ(
      TupleSimilarity(zero, zero, SimilarityMetric::kJaccard).value(), 1.0);
  EXPECT_DOUBLE_EQ(
      TupleSimilarity(zero, zero, SimilarityMetric::kCosine).value(), 1.0);
}

TEST(SimilarityTest, ValidatesInput) {
  EXPECT_FALSE(
      TupleSimilarity({1, 0}, {1}, SimilarityMetric::kJaccard).ok());
  EXPECT_FALSE(TupleSimilarity({}, {}, SimilarityMetric::kJaccard).ok());
}

TEST(SigDbTest, AddValidation) {
  SignatureDatabase db;
  EXPECT_FALSE(db.Add(Signature{"", {1, 0}}).ok());
  ASSERT_TRUE(db.Add(Signature{"a", {1, 0, 1}}).ok());
  EXPECT_FALSE(db.Add(Signature{"b", {1, 0}}).ok());  // length mismatch
  EXPECT_EQ(db.size(), 1u);
}

TEST(SigDbTest, QueryRanksByBestSimilarity) {
  SignatureDatabase db;
  ASSERT_TRUE(db.Add(Signature{"cpu-hog", {1, 1, 0, 0, 0}}).ok());
  ASSERT_TRUE(db.Add(Signature{"mem-hog", {0, 0, 1, 1, 0}}).ok());
  ASSERT_TRUE(db.Add(Signature{"mem-hog", {0, 0, 1, 1, 1}}).ok());
  Result<std::vector<RankedCause>> ranked =
      db.Query({0, 0, 1, 1, 0}, SimilarityMetric::kJaccard);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked.value().size(), 2u);
  EXPECT_EQ(ranked.value()[0].problem, "mem-hog");
  EXPECT_DOUBLE_EQ(ranked.value()[0].score, 1.0);  // best of the two entries
  EXPECT_EQ(ranked.value()[1].problem, "cpu-hog");
}

TEST(SigDbTest, QueryTopKLimits) {
  SignatureDatabase db;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        db.Add(Signature{"p" + std::to_string(i), {1, 0, 0}}).ok());
  }
  Result<std::vector<RankedCause>> ranked =
      db.Query({1, 0, 0}, SimilarityMetric::kJaccard, 3);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked.value().size(), 3u);
}

TEST(SigDbTest, EmptyDatabaseQueryFails) {
  SignatureDatabase db;
  EXPECT_FALSE(db.Query({1, 0}, SimilarityMetric::kJaccard).ok());
}

TEST(SigDbTest, IdfDownweightsCommonBits) {
  // Bit 0 is violated by three of four signatures (a generic "node in
  // trouble" bit); bit 1 is rare. Under plain Jaccard the query's best
  // match is a signature sharing only the generic bit; under IDF
  // weighting the signature sharing the rare bit must win.
  SignatureDatabase db;
  ASSERT_TRUE(db.Add(Signature{"generic-a", {1, 0, 1, 0}}).ok());
  ASSERT_TRUE(db.Add(Signature{"rare", {0, 1, 1, 0}}).ok());
  ASSERT_TRUE(db.Add(Signature{"generic-b", {1, 0, 0, 1}}).ok());
  ASSERT_TRUE(db.Add(Signature{"generic-c", {1, 0, 0, 0}}).ok());
  const std::vector<uint8_t> query = {1, 1, 0, 0};
  const auto plain = db.Query(query, SimilarityMetric::kJaccard).value();
  EXPECT_EQ(plain[0].problem, "generic-c");  // shares only the common bit
  const auto idf = db.Query(query, SimilarityMetric::kIdfJaccard).value();
  EXPECT_EQ(idf[0].problem, "rare");
}

TEST(SigDbTest, IdfQueryRejectsMismatchedTupleLength) {
  // Regression: a kIdfJaccard query whose tuple length differs from the
  // stored signatures used to fall back silently to unweighted similarity;
  // it must be an InvalidArgument error like the plain-Jaccard path.
  SignatureDatabase db;
  ASSERT_TRUE(db.Add(Signature{"cpu-hog", {1, 0, 1, 0}}).ok());
  Result<std::vector<RankedCause>> short_tuple =
      db.Query({1, 0, 1}, SimilarityMetric::kIdfJaccard);
  ASSERT_FALSE(short_tuple.ok());
  EXPECT_EQ(short_tuple.status().code(), StatusCode::kInvalidArgument);
  Result<std::vector<RankedCause>> empty_tuple =
      db.Query({}, SimilarityMetric::kIdfJaccard);
  ASSERT_FALSE(empty_tuple.ok());
  EXPECT_EQ(empty_tuple.status().code(), StatusCode::kInvalidArgument);
  // Matching length still works.
  EXPECT_TRUE(db.Query({1, 0, 1, 0}, SimilarityMetric::kIdfJaccard).ok());
}

TEST(SigDbTest, FindConflictsFlagsNearIdenticalProblems) {
  SignatureDatabase db;
  ASSERT_TRUE(db.Add(Signature{"net-drop", {1, 1, 1, 0, 0, 0}}).ok());
  ASSERT_TRUE(db.Add(Signature{"net-delay", {1, 1, 0, 1, 0, 0}}).ok());
  ASSERT_TRUE(db.Add(Signature{"cpu-hog", {0, 0, 0, 0, 1, 1}}).ok());
  Result<std::vector<SignatureConflict>> conflicts = db.FindConflicts(0.4);
  ASSERT_TRUE(conflicts.ok());
  ASSERT_EQ(conflicts.value().size(), 1u);
  EXPECT_EQ(conflicts.value()[0].problem_a, "net-delay");
  EXPECT_EQ(conflicts.value()[0].problem_b, "net-drop");
  EXPECT_NEAR(conflicts.value()[0].similarity, 0.5, 1e-12);  // 2 of 4
}

TEST(SigDbTest, FindConflictsUsesBestPairAcrossMultipleSignatures) {
  SignatureDatabase db;
  ASSERT_TRUE(db.Add(Signature{"a", {1, 1, 0, 0}}).ok());
  ASSERT_TRUE(db.Add(Signature{"a", {0, 0, 1, 1}}).ok());
  ASSERT_TRUE(db.Add(Signature{"b", {1, 1, 0, 0}}).ok());  // identical to a#1
  Result<std::vector<SignatureConflict>> conflicts = db.FindConflicts(0.9);
  ASSERT_TRUE(conflicts.ok());
  ASSERT_EQ(conflicts.value().size(), 1u);
  EXPECT_DOUBLE_EQ(conflicts.value()[0].similarity, 1.0);
}

TEST(SigDbTest, FindConflictsIgnoresSameProblemPairs) {
  SignatureDatabase db;
  ASSERT_TRUE(db.Add(Signature{"a", {1, 0}}).ok());
  ASSERT_TRUE(db.Add(Signature{"a", {1, 0}}).ok());
  Result<std::vector<SignatureConflict>> conflicts = db.FindConflicts(0.1);
  ASSERT_TRUE(conflicts.ok());
  EXPECT_TRUE(conflicts.value().empty());
}

TEST(SigDbTest, FindConflictsSortedDescending) {
  SignatureDatabase db;
  ASSERT_TRUE(db.Add(Signature{"a", {1, 1, 1, 1, 0, 0}}).ok());
  ASSERT_TRUE(db.Add(Signature{"b", {1, 1, 1, 0, 0, 0}}).ok());  // 3/4 vs a
  ASSERT_TRUE(db.Add(Signature{"c", {1, 1, 0, 0, 1, 1}}).ok());  // lower
  Result<std::vector<SignatureConflict>> conflicts = db.FindConflicts(0.1);
  ASSERT_TRUE(conflicts.ok());
  for (size_t i = 1; i < conflicts.value().size(); ++i) {
    EXPECT_GE(conflicts.value()[i - 1].similarity,
              conflicts.value()[i].similarity);
  }
}

}  // namespace
}  // namespace invarnetx::core
