// Tests for the serving layer: the MonitorFleet (batched ingestion, bounded
// windows, alarm-triggered asynchronous diagnosis, retrain safety) and the
// deterministic fleet replay driver.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/scenario.h"
#include "core/evaluate.h"
#include "obs/http.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "serve/fleet.h"
#include "serve/replay.h"
#include "serve/statusz.h"

namespace invarnetx {
namespace {

using core::InvarNetX;
using core::OperationContext;
using serve::FleetConfig;
using serve::FleetDiagnosis;
using serve::MonitorFleet;
using serve::TickSample;
using serve::TickSummary;
using workload::WorkloadType;

OperationContext Context(int node) {
  return OperationContext{WorkloadType::kWordCount,
                          "10.0.0." + std::to_string(node + 1)};
}

// One GET over a fresh loopback connection, response discarded; returns
// whether the round trip completed. The full-protocol assertions live in
// http_test - here a scraper only needs to generate real endpoint traffic.
bool ScrapeOverLoopback(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return false;
  }
  char buffer[4096];
  while (::recv(fd, buffer, sizeof(buffer), 0) > 0) {
  }
  ::close(fd);
  return true;
}

TickSample SampleAt(const telemetry::RunTrace& trace, int node, size_t t) {
  const telemetry::NodeTrace& series = trace.nodes[static_cast<size_t>(node)];
  TickSample sample;
  sample.context = Context(node);
  sample.cpi = series.cpi[t];
  for (int m = 0; m < telemetry::kNumMetrics; ++m) {
    sample.metrics[static_cast<size_t>(m)] =
        series.metrics[static_cast<size_t>(m)][t];
  }
  return sample;
}

// One trained pipeline shared by the fleet tests: contexts for slaves 1 and
// 2, with the cpu-hog signature taught to slave 1 (the fault's victim).
class MonitorFleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new InvarNetX();
    auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 8, 42);
    ASSERT_TRUE(normal.ok());
    for (int node = 1; node <= 2; ++node) {
      ASSERT_TRUE(pipeline_
                      ->TrainContext(Context(node), normal.value(),
                                     static_cast<size_t>(node))
                      .ok());
    }
    for (uint64_t rep = 0; rep < 2; ++rep) {
      auto run = core::SimulateFaultRun(WorkloadType::kWordCount,
                                        faults::FaultType::kCpuHog, 900 + rep);
      ASSERT_TRUE(run.ok());
      ASSERT_TRUE(
          pipeline_->AddSignature(Context(1), "cpu-hog", run.value(), 1)
              .ok());
    }
  }
  static void TearDownTestSuite() { delete pipeline_; }

  // Streams every tick of the trace into the fleet (nodes 1 and 2).
  static void Stream(MonitorFleet* fleet, const telemetry::RunTrace& trace) {
    for (size_t t = 0; t < trace.nodes[1].cpi.size(); ++t) {
      Result<TickSummary> summary =
          fleet->IngestTick({SampleAt(trace, 1, t), SampleAt(trace, 2, t)});
      ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    }
  }

  static InvarNetX* pipeline_;
};

InvarNetX* MonitorFleetTest::pipeline_ = nullptr;

TEST_F(MonitorFleetTest, LifecycleAlarmsAndAsyncDiagnosis) {
  MonitorFleet fleet(pipeline_);
  EXPECT_EQ(fleet.active_monitors(), 0u);
  ASSERT_TRUE(fleet.StartJob(Context(1)).ok());
  ASSERT_TRUE(fleet.StartJob(Context(2)).ok());
  EXPECT_EQ(fleet.active_monitors(), 2u);

  auto faulty = core::SimulateFaultRun(WorkloadType::kWordCount,
                                       faults::FaultType::kCpuHog, 888);
  ASSERT_TRUE(faulty.ok());
  Stream(&fleet, faulty.value());
  fleet.WaitForDiagnoses();
  EXPECT_EQ(fleet.pending_diagnoses(), 0u);

  // The fault targets node 1; its monitor must alarm and the alarm must
  // have produced exactly one completed diagnosis naming the right cause.
  ASSERT_TRUE(fleet.View(Context(1)).has_value());
  EXPECT_TRUE(fleet.View(Context(1))->alarm_active);
  std::vector<FleetDiagnosis> diagnoses = fleet.TakeDiagnoses();
  bool victim_diagnosed = false;
  for (const FleetDiagnosis& d : diagnoses) {
    if (!(d.context == Context(1))) continue;
    victim_diagnosed = true;
    ASSERT_TRUE(d.status.ok()) << d.status.ToString();
    // The diagnosis ran against the epoch pinned at StartJob: one train
    // publish plus two AddSignature publishes in the fixture = epoch 3.
    EXPECT_EQ(d.epoch, 3u);
    EXPECT_TRUE(d.report.anomaly_detected);
    EXPECT_GE(d.first_alarm_tick, 8);  // fault starts at tick 8
    EXPECT_EQ(d.report.first_alarm_tick, d.first_alarm_tick);
    ASSERT_FALSE(d.report.causes.empty());
    EXPECT_EQ(d.report.causes[0].problem, "cpu-hog");
  }
  EXPECT_TRUE(victim_diagnosed);
  // TakeDiagnoses drains.
  EXPECT_TRUE(fleet.TakeDiagnoses().empty());
}

TEST_F(MonitorFleetTest, IngestRejectsUnknownInactiveAndDuplicate) {
  MonitorFleet fleet(pipeline_);
  auto clean = core::SimulateNormalRuns(WorkloadType::kWordCount, 1, 777);
  ASSERT_TRUE(clean.ok());
  const TickSample sample = SampleAt(clean.value()[0], 1, 0);

  // No StartJob yet: the batch is rejected and nothing is ingested.
  EXPECT_FALSE(fleet.IngestTick({sample}).ok());
  ASSERT_TRUE(fleet.StartJob(Context(1)).ok());
  // Duplicate monitor in one batch.
  EXPECT_FALSE(fleet.IngestTick({sample, sample}).ok());
  EXPECT_EQ(fleet.View(Context(1))->ticks_observed, 0);
  // A well-formed batch then lands.
  ASSERT_TRUE(fleet.IngestTick({sample}).ok());
  EXPECT_EQ(fleet.View(Context(1))->ticks_observed, 1);
  // Untrained contexts cannot be armed at all.
  EXPECT_FALSE(
      fleet.StartJob(OperationContext{WorkloadType::kSort, "10.0.0.2"}).ok());
}

TEST_F(MonitorFleetTest, SteadyStateMemoryBoundedByMonitorsTimesWindow) {
  FleetConfig config;
  config.window_capacity = 16;
  MonitorFleet fleet(pipeline_, config);
  ASSERT_TRUE(fleet.StartJob(Context(1)).ok());
  ASSERT_TRUE(fleet.StartJob(Context(2)).ok());

  auto faulty = core::SimulateFaultRun(WorkloadType::kWordCount,
                                       faults::FaultType::kCpuHog, 888);
  ASSERT_TRUE(faulty.ok());
  Stream(&fleet, faulty.value());
  fleet.WaitForDiagnoses();

  const int total = static_cast<int>(faulty.value().nodes[1].cpi.size());
  ASSERT_GT(total, 16);  // the run must actually overflow the window
  for (int node = 1; node <= 2; ++node) {
    const std::optional<serve::MonitorView> monitor =
        fleet.View(Context(node));
    ASSERT_TRUE(monitor.has_value());
    // Absolute tick accounting survives eviction...
    EXPECT_EQ(monitor->ticks_observed, total);
    // ...while retention and allocation stay pinned at the configured
    // window: fleet memory is monitors x window_capacity ticks.
    EXPECT_EQ(monitor->window_ticks, 16);
    EXPECT_EQ(monitor->window_capacity, 16u);
    EXPECT_EQ(monitor->window_start_tick, static_cast<int64_t>(total - 16));
  }
  // The victim's first alarm pre-dates the window's current left edge, yet
  // is still reported in absolute job ticks.
  const std::optional<serve::MonitorView> victim = fleet.View(Context(1));
  ASSERT_TRUE(victim->alarm_active);
  EXPECT_LT(victim->first_alarm_tick,
            static_cast<int>(victim->window_start_tick));
  EXPECT_GE(victim->first_alarm_tick, 8);
}

TEST_F(MonitorFleetTest, DiagnoseOnAlarmCanBeDisabled) {
  FleetConfig config;
  config.diagnose_on_alarm = false;
  MonitorFleet fleet(pipeline_, config);
  ASSERT_TRUE(fleet.StartJob(Context(1)).ok());
  ASSERT_TRUE(fleet.StartJob(Context(2)).ok());
  auto faulty = core::SimulateFaultRun(WorkloadType::kWordCount,
                                       faults::FaultType::kCpuHog, 888);
  ASSERT_TRUE(faulty.ok());
  Stream(&fleet, faulty.value());
  fleet.WaitForDiagnoses();
  EXPECT_TRUE(fleet.View(Context(1))->alarm_active);
  EXPECT_TRUE(fleet.TakeDiagnoses().empty());
}

TEST_F(MonitorFleetTest, SerialAndParallelIngestAgree) {
  auto faulty = core::SimulateFaultRun(WorkloadType::kWordCount,
                                       faults::FaultType::kCpuHog, 889);
  ASSERT_TRUE(faulty.ok());
  auto run_with = [&](int threads) {
    FleetConfig config;
    config.threads = threads;
    MonitorFleet fleet(pipeline_, config);
    EXPECT_TRUE(fleet.StartJob(Context(1)).ok());
    EXPECT_TRUE(fleet.StartJob(Context(2)).ok());
    Stream(&fleet, faulty.value());
    fleet.WaitForDiagnoses();
    std::vector<FleetDiagnosis> diagnoses = fleet.TakeDiagnoses();
    std::string rendered;
    for (const FleetDiagnosis& d : diagnoses) {
      rendered += d.context.ToString() + ":" +
                  std::to_string(d.first_alarm_tick) + ":" +
                  std::to_string(d.report.num_violations);
      if (!d.report.causes.empty()) {
        rendered += ":" + d.report.causes[0].problem;
      }
      rendered += "\n";
    }
    return rendered;
  };
  const std::string serial = run_with(1);
  const std::string parallel = run_with(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST_F(MonitorFleetTest, RetrainWhileActivePinsTheOldEpoch) {
  // A private pipeline: this test retrains it mid-flight.
  InvarNetX pipeline;
  auto normal = core::SimulateNormalRuns(WorkloadType::kWordCount, 6, 43);
  ASSERT_TRUE(normal.ok());
  ASSERT_TRUE(pipeline.TrainContext(Context(1), normal.value(), 1).ok());

  MonitorFleet fleet(&pipeline);
  ASSERT_TRUE(fleet.StartJob(Context(1)).ok());
  ASSERT_EQ(fleet.View(Context(1))->epoch, 1u);

  // Retrain under the fleet's feet: the published epoch advances, but the
  // armed monitor keeps the snapshot it pinned at StartJob.
  ASSERT_TRUE(pipeline.TrainContext(Context(1), normal.value(), 1).ok());
  EXPECT_EQ(pipeline.GetContext(Context(1)).value()->epoch, 2u);
  EXPECT_EQ(fleet.View(Context(1))->epoch, 1u);

  auto clean = core::SimulateNormalRuns(WorkloadType::kWordCount, 1, 778);
  ASSERT_TRUE(clean.ok());
  for (size_t t = 0; t < clean.value()[0].nodes[1].cpi.size(); ++t) {
    ASSERT_TRUE(
        fleet.IngestTick({SampleAt(clean.value()[0], 1, t)}).ok());
  }
  EXPECT_EQ(fleet.View(Context(1))->epoch, 1u);
  // The next job picks up the fresh epoch.
  ASSERT_TRUE(fleet.StartJob(Context(1)).ok());
  EXPECT_EQ(fleet.View(Context(1))->epoch, 2u);
}

TEST_F(MonitorFleetTest, SnapshotReflectsIngestAlarmsAndWatchdogs) {
  obs::EventJournal::Shared().Reset();
  FleetConfig config;
  // One alarm in the window trips the storm detector; any nonzero ingest
  // latency beats a sub-nanosecond budget, so the watchdog trips too.
  config.storm_alarm_threshold = 1;
  config.slow_tick_budget_seconds = 1e-12;
  MonitorFleet fleet(pipeline_, config);
  ASSERT_TRUE(fleet.StartJob(Context(1)).ok());
  ASSERT_TRUE(fleet.StartJob(Context(2)).ok());

  auto faulty = core::SimulateFaultRun(WorkloadType::kWordCount,
                                       faults::FaultType::kCpuHog, 888);
  ASSERT_TRUE(faulty.ok());
  Stream(&fleet, faulty.value());
  fleet.WaitForDiagnoses();

  const uint64_t total =
      static_cast<uint64_t>(faulty.value().nodes[1].cpi.size());
  const serve::FleetStatus status = fleet.Snapshot();
  EXPECT_EQ(status.active_monitors, 2u);
  EXPECT_EQ(status.ticks_ingested, total);
  EXPECT_EQ(status.samples_ingested, 2 * total);
  EXPECT_GE(status.alarms_raised, 1u);
  EXPECT_EQ(status.alarms_active, fleet.alarms_active());
  EXPECT_EQ(status.pending_diagnoses, 0u);
  EXPECT_GE(status.diagnoses_completed, 1u);
  EXPECT_TRUE(status.slow_ticks_active);
  EXPECT_GT(status.ingest_p99_seconds, 0.0);
  EXPECT_EQ(status.monitors_total, 2u);
  ASSERT_EQ(status.monitors.size(), 2u);  // small fleet: full dump
  EXPECT_FALSE(status.monitors_listed_truncated);
  for (const serve::MonitorStatus& monitor : status.monitors) {
    EXPECT_TRUE(monitor.job_active);
    EXPECT_EQ(monitor.ticks_observed, static_cast<int>(total));
    EXPECT_GE(monitor.shard, 0);
    EXPECT_LT(monitor.shard, fleet.shard_count());
  }
  ASSERT_EQ(status.shards.size(),
            static_cast<size_t>(fleet.shard_count()));
  uint64_t shard_samples = 0;
  size_t shard_monitors = 0;
  for (const serve::ShardStatus& shard : status.shards) {
    shard_samples += shard.samples;
    shard_monitors += shard.monitors;
    EXPECT_EQ(shard.ring_rejects, 0u);
  }
  EXPECT_EQ(shard_samples, 2 * total);
  EXPECT_EQ(shard_monitors, 2u);

  // The watchdog trips and the storm detector's start (and, once the alarm
  // leaves the sliding window, its clear) all land in the journal.
  bool storm_started = false, storm_cleared = false, slow_tick = false;
  bool alarm_logged = false, diagnosis_logged = false;
  for (const obs::Event& event : obs::EventJournal::Shared().Snapshot()) {
    if (event.kind == obs::EventKind::kAlarmStorm) {
      if (event.message.find("started") != std::string::npos) {
        storm_started = true;
      }
      if (event.message.find("cleared") != std::string::npos) {
        storm_cleared = true;
      }
    }
    if (event.kind == obs::EventKind::kSlowTick) slow_tick = true;
    if (event.kind == obs::EventKind::kAlarm) alarm_logged = true;
    if (event.kind == obs::EventKind::kDiagnosis) diagnosis_logged = true;
  }
  EXPECT_TRUE(storm_started);
  EXPECT_TRUE(storm_cleared);
  EXPECT_TRUE(slow_tick);
  EXPECT_TRUE(alarm_logged);
  EXPECT_TRUE(diagnosis_logged);
}

TEST_F(MonitorFleetTest, OverflowIsCountedAndJournaledOncePerJob) {
  obs::EventJournal::Shared().Reset();
  FleetConfig config;
  config.window_capacity = 16;
  MonitorFleet fleet(pipeline_, config);
  ASSERT_TRUE(fleet.StartJob(Context(1)).ok());
  ASSERT_TRUE(fleet.StartJob(Context(2)).ok());
  auto faulty = core::SimulateFaultRun(WorkloadType::kWordCount,
                                       faults::FaultType::kCpuHog, 888);
  ASSERT_TRUE(faulty.ok());
  Stream(&fleet, faulty.value());
  fleet.WaitForDiagnoses();

  const uint64_t total =
      static_cast<uint64_t>(faulty.value().nodes[1].cpi.size());
  ASSERT_GT(total, 16u);
  const serve::FleetStatus status = fleet.Snapshot();
  // Every tick past the window overwrote history, on both monitors...
  EXPECT_EQ(status.window_overflows, 2 * (total - 16));
  // ...but each job journals its first overflow only once.
  size_t overflow_events = 0;
  for (const obs::Event& event : obs::EventJournal::Shared().Snapshot()) {
    if (event.kind == obs::EventKind::kRingOverflow) ++overflow_events;
  }
  EXPECT_EQ(overflow_events, 2u);
}

TEST_F(MonitorFleetTest, BackpressureRejectsDeterministicallyAndJournals) {
  obs::EventJournal::Shared().Reset();
  FleetConfig config;
  config.threads = 1;
  config.shards = 1;
  config.ring_capacity = 1;  // fixed capacity: real backpressure
  MonitorFleet fleet(pipeline_, config);
  obs::Counter& overflow_counter = obs::MetricsRegistry::Shared().GetCounter(
      "serve.ring_overflow", {{"shard", "0"}});
  const uint64_t counter_before = overflow_counter.value();

  ASSERT_TRUE(fleet.StartJob(Context(1)).ok());
  ASSERT_TRUE(fleet.StartJob(Context(2)).ok());
  auto clean = core::SimulateNormalRuns(WorkloadType::kWordCount, 1, 779);
  ASSERT_TRUE(clean.ok());
  constexpr int kTicks = 3;
  for (int t = 0; t < kTicks; ++t) {
    Result<TickSummary> summary =
        fleet.IngestTick({SampleAt(clean.value()[0], 1, static_cast<size_t>(t)),
                          SampleAt(clean.value()[0], 2,
                                   static_cast<size_t>(t))});
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    // The ring holds one entry, so admission (decided by batch order, never
    // queue timing) accepts the first sample and rejects the second - the
    // same victim every tick.
    EXPECT_EQ(summary.value().samples, 1);
    EXPECT_EQ(summary.value().rejected, 1);
  }
  // The admitted monitor advanced; the rejected one never observed a tick.
  EXPECT_EQ(fleet.View(Context(1))->ticks_observed, kTicks);
  EXPECT_EQ(fleet.View(Context(2))->ticks_observed, 0);

  const serve::FleetStatus status = fleet.Snapshot();
  EXPECT_EQ(status.samples_ingested, static_cast<uint64_t>(kTicks));
  EXPECT_EQ(status.samples_rejected, static_cast<uint64_t>(kTicks));
  ASSERT_EQ(status.shards.size(), 1u);
  EXPECT_EQ(status.shards[0].ring_capacity, 1u);
  EXPECT_EQ(status.shards[0].ring_rejects, static_cast<uint64_t>(kTicks));
  EXPECT_EQ(overflow_counter.value() - counter_before,
            static_cast<uint64_t>(kTicks));

  // Backpressure journals once per shard per job era, not once per reject.
  size_t backpressure_events = 0;
  for (const obs::Event& event : obs::EventJournal::Shared().Snapshot()) {
    if (event.kind == obs::EventKind::kBackpressure) ++backpressure_events;
  }
  EXPECT_EQ(backpressure_events, 1u);
}

TEST_F(MonitorFleetTest, HandleStampedSamplesBypassTheContextLookup) {
  MonitorFleet fleet(pipeline_);
  Result<serve::MonitorHandle> handle = fleet.StartJob(Context(1));
  ASSERT_TRUE(handle.ok());
  auto clean = core::SimulateNormalRuns(WorkloadType::kWordCount, 1, 780);
  ASSERT_TRUE(clean.ok());
  TickSample sample = SampleAt(clean.value()[0], 1, 0);
  sample.monitor = handle.value();
  ASSERT_TRUE(fleet.IngestTick({sample}).ok());
  EXPECT_EQ(fleet.View(handle.value())->ticks_observed, 1);
  EXPECT_EQ(fleet.View(handle.value())->handle, handle.value());
  EXPECT_EQ(fleet.Resolve(Context(1)), handle.value());
  // A bogus handle is rejected, not silently resolved via the context.
  sample.monitor = 12345;
  EXPECT_FALSE(fleet.IngestTick({sample}).ok());
  EXPECT_FALSE(fleet.View(serve::MonitorHandle{12345}).has_value());
}

TEST_F(MonitorFleetTest, StatusCacheCapsRowsAtTopKInterestingMonitors) {
  FleetConfig config;
  config.status_top_k = 1;
  MonitorFleet fleet(pipeline_, config);
  ASSERT_TRUE(fleet.StartJob(Context(1)).ok());
  ASSERT_TRUE(fleet.StartJob(Context(2)).ok());

  // Quiet fleet with more monitors than top-k: no per-monitor rows at all
  // (nothing is interesting), flagged truncated.
  const serve::FleetStatus quiet = fleet.Snapshot();
  EXPECT_EQ(quiet.monitors_total, 2u);
  EXPECT_TRUE(quiet.monitors.empty());
  EXPECT_TRUE(quiet.monitors_listed_truncated);

  // After the fault the alarmed monitor is interesting and surfaces.
  auto faulty = core::SimulateFaultRun(WorkloadType::kWordCount,
                                       faults::FaultType::kCpuHog, 888);
  ASSERT_TRUE(faulty.ok());
  Stream(&fleet, faulty.value());
  fleet.WaitForDiagnoses();
  const serve::FleetStatus alarmed = fleet.Snapshot();
  ASSERT_EQ(alarmed.monitors.size(), 1u);
  EXPECT_EQ(alarmed.monitors[0].context, Context(1).ToString());
  EXPECT_TRUE(alarmed.monitors[0].alarm_active);
  EXPECT_TRUE(alarmed.monitors_listed_truncated);

  // The explicit full dump overrides the cap.
  FleetConfig full = config;
  full.status_full_dump = true;
  MonitorFleet full_fleet(pipeline_, full);
  ASSERT_TRUE(full_fleet.StartJob(Context(1)).ok());
  ASSERT_TRUE(full_fleet.StartJob(Context(2)).ok());
  const serve::FleetStatus dump = full_fleet.Snapshot();
  EXPECT_EQ(dump.monitors.size(), 2u);
  EXPECT_FALSE(dump.monitors_listed_truncated);
}

// ------------------------------------------------------------- replay -----

constexpr char kScenarioText[] =
    "name = serve-replay\n"
    "workload = wordcount\n"
    "fault = cpu-hog\n"
    "seed = 42\n"
    "slaves = 2\n"
    "normal-runs = 4\n"
    "signature-runs = 1\n"
    "test-runs = 2\n"
    "signatures = cpu-hog,mem-hog\n";

TEST(ServeReplayTest, ScenarioReplayIsByteIdenticalAcrossThreadCounts) {
  Result<campaign::Scenario> scenario =
      campaign::ParseScenario(kScenarioText);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();

  auto render = [&](int threads) {
    serve::ReplayOptions options;
    options.threads = threads;
    Result<std::string> out = serve::ReplayScenario(scenario.value(), options);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? out.value() : std::string();
  };
  const std::string serial = render(1);
  const std::string parallel = render(4);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  // The replay must actually exercise the alarm path: the victim node's
  // verdict line names the injected cause.
  EXPECT_NE(serial.find("ALARM"), std::string::npos);
  EXPECT_NE(serial.find("cpu-hog"), std::string::npos);
  EXPECT_NE(serial.find("== run 1 =="), std::string::npos);
}

// The tentpole determinism claim: verdicts are a function of the trace
// alone, never of how monitors were sharded or how many workers drained the
// rings. Every (shards, threads) combination must render the same bytes.
TEST(ServeReplayTest, ReplayIsByteIdenticalAcrossShardAndThreadCounts) {
  Result<campaign::Scenario> scenario =
      campaign::ParseScenario(kScenarioText);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();

  auto render = [&](int shards, int threads) {
    serve::ReplayOptions options;
    options.shards = shards;
    options.threads = threads;
    Result<std::string> out = serve::ReplayScenario(scenario.value(), options);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? out.value() : std::string();
  };
  const std::string baseline = render(1, 1);
  ASSERT_FALSE(baseline.empty());
  EXPECT_NE(baseline.find("ALARM"), std::string::npos);
  for (int shards : {2, 8}) {
    for (int threads : {1, 4}) {
      EXPECT_EQ(baseline, render(shards, threads))
          << "shards=" << shards << " threads=" << threads;
    }
  }
  EXPECT_EQ(baseline, render(1, 4)) << "shards=1 threads=4";
}

TEST(ServeReplayTest, MaxRunsCapsTheReplay) {
  Result<campaign::Scenario> scenario =
      campaign::ParseScenario(kScenarioText);
  ASSERT_TRUE(scenario.ok());
  serve::ReplayOptions options;
  options.threads = 1;
  options.max_runs = 1;
  Result<std::string> out = serve::ReplayScenario(scenario.value(), options);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out.value().find("== run 0 =="), std::string::npos);
  EXPECT_EQ(out.value().find("== run 1 =="), std::string::npos);
}

TEST(ServeReplayTest, RetrainEachRunStaysDeterministicAndReusesScores) {
  Result<campaign::Scenario> scenario =
      campaign::ParseScenario(kScenarioText);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();

  auto render = [&](int threads) {
    serve::ReplayOptions options;
    options.threads = threads;
    options.retrain_each_run = true;
    Result<std::string> out = serve::ReplayScenario(scenario.value(), options);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? out.value() : std::string();
  };
  const std::string serial = render(1);
  ASSERT_FALSE(serial.empty());
  // The retrain summary is rendered per run; the training data is unchanged
  // between runs, so every pair score is reused and none rescored - which
  // also keeps the report byte-identical across thread counts.
  EXPECT_NE(serial.find("retrain:"), std::string::npos);
  EXPECT_NE(serial.find("pairs rescored 0"), std::string::npos);
  EXPECT_EQ(serial.find("reused 0\n"), std::string::npos);
  EXPECT_EQ(serial, render(4));

  // Verdict lines are unaffected by the retrain passes.
  serve::ReplayOptions plain;
  plain.threads = 1;
  Result<std::string> baseline =
      serve::ReplayScenario(scenario.value(), plain);
  ASSERT_TRUE(baseline.ok());
  EXPECT_NE(serial.find("ALARM"), std::string::npos);
  std::istringstream with_retrain(serial);
  std::string line;
  std::vector<std::string> verdicts;
  while (std::getline(with_retrain, line)) {
    if (line.find("node ") != std::string::npos) verdicts.push_back(line);
  }
  std::istringstream without(baseline.value());
  std::vector<std::string> baseline_verdicts;
  while (std::getline(without, line)) {
    if (line.find("node ") != std::string::npos) {
      baseline_verdicts.push_back(line);
    }
  }
  EXPECT_EQ(verdicts, baseline_verdicts);
}

// A live scraper pounding every endpoint must never leak into replay
// output: verdicts are computed from the trace alone, and all observability
// traffic stays on the HTTP plane (and stderr). This is the in-process
// version of the CI smoke's `serve --http-port` byte-identity check.
TEST(ServeReplayTest, ReplayIsByteIdenticalUnderLiveScrape) {
  Result<campaign::Scenario> scenario =
      campaign::ParseScenario(kScenarioText);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  serve::ReplayOptions options;
  options.threads = 2;

  Result<std::string> quiet = serve::ReplayScenario(scenario.value(), options);
  ASSERT_TRUE(quiet.ok()) << quiet.status().ToString();

  obs::HttpServer server;
  serve::InstallObsEndpoints(&server);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load()) {
      ScrapeOverLoopback(port, "/metrics");
      ScrapeOverLoopback(port, "/statusz");
    }
  });

  Result<std::string> scraped =
      serve::ReplayScenario(scenario.value(), options);
  done.store(true);
  scraper.join();
  server.Stop();
  ASSERT_TRUE(scraped.ok()) << scraped.status().ToString();
  EXPECT_EQ(quiet.value(), scraped.value());
}

// An unknown fault at serving time: the injected CPU hog is held out of the
// signature catalog and nothing the victim context learned clears the
// similarity threshold, so the fleet's diagnosis falls back to the causal
// suspect ranking. The ranked-metric block must appear on the verdict line
// and the whole report must stay byte-identical across thread counts (the
// ranking is a deterministic power iteration, not a sampled walk).
TEST(ServeReplayTest, UnknownFaultFallsBackToCausalRankingDeterministically) {
  Result<campaign::Scenario> scenario = campaign::ParseScenario(
      "name = serve-unseen\n"
      "workload = wordcount\n"
      "fault = cpu-hog\n"
      "seed = 7\n"
      "slaves = 2\n"
      "normal-runs = 3\n"
      "signature-runs = 1\n"
      "test-runs = 2\n"
      "signatures = all-except-fault\n");
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  ASSERT_TRUE(scenario.value().hold_out);

  auto render = [&](int threads) {
    serve::ReplayOptions options;
    options.threads = threads;
    Result<std::string> out = serve::ReplayScenario(scenario.value(), options);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? out.value() : std::string();
  };
  const std::string serial = render(1);
  ASSERT_FALSE(serial.empty());

  // The alarm fired, the best signature match stayed below the similarity
  // threshold, and the causal fallback ranked suspects instead.
  EXPECT_NE(serial.find("ALARM"), std::string::npos);
  EXPECT_NE(serial.find("(below threshold)"), std::string::npos);
  EXPECT_NE(serial.find("; suspects:"), std::string::npos);
  // No verdict line may claim the held-out fault: the catalog genuinely
  // never learned it. (The report header names it; verdicts must not.)
  std::istringstream lines(serial);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("ALARM") == std::string::npos) continue;
    EXPECT_EQ(line.find("-> cpu-hog"), std::string::npos) << line;
    EXPECT_NE(line.find("suspects:"), std::string::npos) << line;
  }

  // Byte-identical across thread counts and across a repeated replay.
  EXPECT_EQ(serial, render(4));
  EXPECT_EQ(serial, render(1));
}

TEST(ServeReplayTest, TraceReplayRejectsEmptyTrace) {
  InvarNetX pipeline;
  telemetry::RunTrace empty;
  EXPECT_FALSE(
      serve::ReplayTrace(pipeline, empty, serve::ReplayOptions()).ok());
}

}  // namespace
}  // namespace invarnetx
