#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "timeseries/acf.h"
#include "timeseries/arima.h"
#include "timeseries/diagnostics.h"
#include "timeseries/diff.h"

namespace invarnetx::ts {
namespace {

// Synthesizes an AR(1) series x_t = c + phi x_{t-1} + eps.
std::vector<double> MakeAr1(double phi, double c, double sigma, int n,
                            uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  double x = c / (1.0 - phi);
  for (int i = 0; i < n; ++i) {
    x = c + phi * x + rng.Gaussian(0.0, sigma);
    out.push_back(x);
  }
  return out;
}

// ------------------------------------------------------------------ diff --

TEST(DiffTest, FirstDifference) {
  Result<std::vector<double>> d = Difference({1, 3, 6, 10}, 1);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), (std::vector<double>{2, 3, 4}));
}

TEST(DiffTest, SecondDifference) {
  Result<std::vector<double>> d = Difference({1, 3, 6, 10}, 2);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), (std::vector<double>{1, 1}));
}

TEST(DiffTest, ZeroDifferenceIdentity) {
  Result<std::vector<double>> d = Difference({1, 2}, 0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), (std::vector<double>{1, 2}));
}

TEST(DiffTest, RejectsBadInput) {
  EXPECT_FALSE(Difference({1, 2}, -1).ok());
  EXPECT_FALSE(Difference({1, 2}, 2).ok());
}

TEST(DiffTest, UndifferenceInvertsD1) {
  // Forecast of w = 4 after series ending at 10 should be 14.
  Result<double> y = Undifference({10.0}, 1, 4.0);
  ASSERT_TRUE(y.ok());
  EXPECT_DOUBLE_EQ(y.value(), 14.0);
}

TEST(DiffTest, UndifferenceInvertsD2) {
  // series 1,3,6,10: diffs 2,3,4; second diffs 1,1. A second-diff forecast
  // of 1 implies next first-diff 5, next value 15.
  Result<double> y = Undifference({6.0, 10.0}, 2, 1.0);
  ASSERT_TRUE(y.ok());
  EXPECT_DOUBLE_EQ(y.value(), 15.0);
}

TEST(DiffTest, UndifferenceD0IsIdentity) {
  EXPECT_DOUBLE_EQ(Undifference({}, 0, 3.5).value(), 3.5);
}

TEST(DiffTest, RoundTripPropertyRandomSeries) {
  Rng rng(99);
  for (int d = 0; d <= 2; ++d) {
    std::vector<double> series;
    for (int i = 0; i < 30; ++i) series.push_back(rng.Gaussian(0, 1));
    Result<std::vector<double>> w = Difference(series, d);
    ASSERT_TRUE(w.ok());
    if (w.value().empty()) continue;
    // Reconstruct the last point of the series from its predecessors.
    std::vector<double> tail(series.begin(), series.end() - 1);
    Result<double> rebuilt = Undifference(tail, d, w.value().back());
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_NEAR(rebuilt.value(), series.back(), 1e-9) << "d=" << d;
  }
}

// ------------------------------------------------------------------- acf --

TEST(AcfTest, WhiteNoiseUncorrelated) {
  std::vector<double> series = MakeAr1(0.0, 0.0, 1.0, 4000, 21);
  Result<std::vector<double>> acf = Acf(series, 5);
  ASSERT_TRUE(acf.ok());
  EXPECT_DOUBLE_EQ(acf.value()[0], 1.0);
  for (int lag = 1; lag <= 5; ++lag) {
    EXPECT_NEAR(acf.value()[static_cast<size_t>(lag)], 0.0, 0.05);
  }
}

TEST(AcfTest, Ar1DecaysGeometrically) {
  std::vector<double> series = MakeAr1(0.7, 0.0, 1.0, 20000, 22);
  Result<std::vector<double>> acf = Acf(series, 3);
  ASSERT_TRUE(acf.ok());
  EXPECT_NEAR(acf.value()[1], 0.7, 0.05);
  EXPECT_NEAR(acf.value()[2], 0.49, 0.06);
}

TEST(AcfTest, ConstantSeriesZeroBeyondLag0) {
  std::vector<double> series(50, 3.0);
  Result<std::vector<double>> acf = Acf(series, 3);
  ASSERT_TRUE(acf.ok());
  EXPECT_DOUBLE_EQ(acf.value()[0], 1.0);
  EXPECT_DOUBLE_EQ(acf.value()[1], 0.0);
}

TEST(PacfTest, Ar1CutsOffAfterLag1) {
  std::vector<double> series = MakeAr1(0.6, 0.0, 1.0, 20000, 23);
  Result<std::vector<double>> pacf = Pacf(series, 4);
  ASSERT_TRUE(pacf.ok());
  EXPECT_NEAR(pacf.value()[0], 0.6, 0.05);
  for (size_t lag = 1; lag < 4; ++lag) {
    EXPECT_NEAR(pacf.value()[lag], 0.0, 0.05);
  }
}

TEST(YuleWalkerTest, RecoversAr2) {
  // x_t = 0.5 x_{t-1} + 0.3 x_{t-2} + eps
  Rng rng(24);
  std::vector<double> x = {0.0, 0.0};
  for (int i = 0; i < 30000; ++i) {
    x.push_back(0.5 * x[x.size() - 1] + 0.3 * x[x.size() - 2] +
                rng.Gaussian(0, 1));
  }
  Result<std::vector<double>> phi = YuleWalker(x, 2);
  ASSERT_TRUE(phi.ok());
  EXPECT_NEAR(phi.value()[0], 0.5, 0.05);
  EXPECT_NEAR(phi.value()[1], 0.3, 0.05);
}

// ----------------------------------------------------------------- arima --

TEST(ArimaTest, FitRecoversAr1Coefficient) {
  std::vector<double> series = MakeAr1(0.65, 1.0, 0.5, 5000, 31);
  Result<ArimaModel> model = ArimaModel::Fit(series, ArimaOrder{1, 0, 0});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model.value().ar()[0], 0.65, 0.05);
  EXPECT_NEAR(model.value().intercept(), 1.0, 0.15);
  EXPECT_NEAR(model.value().sigma2(), 0.25, 0.05);
}

TEST(ArimaTest, FitRejectsShortSeries) {
  std::vector<double> tiny(8, 1.0);
  EXPECT_FALSE(ArimaModel::Fit(tiny, ArimaOrder{1, 0, 0}).ok());
}

TEST(ArimaTest, FitRejectsNegativeOrder) {
  std::vector<double> series(100, 1.0);
  EXPECT_FALSE(ArimaModel::Fit(series, ArimaOrder{-1, 0, 0}).ok());
}

TEST(ArimaTest, WhiteNoiseModelUsesMean) {
  std::vector<double> series = MakeAr1(0.0, 2.0, 1.0, 2000, 32);
  Result<ArimaModel> model = ArimaModel::Fit(series, ArimaOrder{0, 0, 0});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model.value().intercept(), 2.0, 0.1);
}

TEST(ArimaTest, PredictionBeatsNaiveOnAr1) {
  std::vector<double> series = MakeAr1(0.8, 0.0, 1.0, 2000, 33);
  Result<ArimaModel> model = ArimaModel::Fit(series, ArimaOrder{1, 0, 0});
  ASSERT_TRUE(model.ok());
  Result<std::vector<double>> preds =
      model.value().PredictInSample(series);
  ASSERT_TRUE(preds.ok());
  double model_sse = 0.0, naive_sse = 0.0;
  for (size_t i = 10; i < series.size(); ++i) {
    model_sse += std::pow(series[i] - preds.value()[i], 2);
    naive_sse += std::pow(series[i] - series[i - 1], 2);
  }
  EXPECT_LT(model_sse, naive_sse);
}

TEST(ArimaTest, TrendNeedsDifferencing) {
  // Random walk with drift: ARIMA(0,1,0)-ish; check residuals are small
  // relative to the drifting scale.
  Rng rng(34);
  std::vector<double> series;
  double x = 0.0;
  for (int i = 0; i < 800; ++i) {
    x += 0.5 + rng.Gaussian(0.0, 0.1);
    series.push_back(x);
  }
  Result<ArimaModel> model = ArimaModel::Fit(series, ArimaOrder{1, 1, 0});
  ASSERT_TRUE(model.ok());
  Result<std::vector<double>> resid = model.value().AbsResiduals(series);
  ASSERT_TRUE(resid.ok());
  double mean_resid = 0.0;
  for (size_t i = 10; i < resid.value().size(); ++i) {
    mean_resid += resid.value()[i];
  }
  mean_resid /= static_cast<double>(resid.value().size() - 10);
  EXPECT_LT(mean_resid, 0.2);  // ~sigma of the innovations
}

TEST(ArimaTest, MaTermImprovesMa1Fit) {
  // x_t = eps_t + 0.7 eps_{t-1}
  Rng rng(35);
  std::vector<double> series;
  double prev_eps = rng.Gaussian(0, 1);
  for (int i = 0; i < 5000; ++i) {
    const double eps = rng.Gaussian(0, 1);
    series.push_back(eps + 0.7 * prev_eps);
    prev_eps = eps;
  }
  Result<ArimaModel> ma = ArimaModel::Fit(series, ArimaOrder{0, 0, 1});
  ASSERT_TRUE(ma.ok());
  EXPECT_NEAR(ma.value().ma()[0], 0.7, 0.1);
}

TEST(ArimaTest, FromParametersValidates) {
  EXPECT_FALSE(
      ArimaModel::FromParameters(ArimaOrder{1, 0, 0}, {}, {}, 0.0, 1.0).ok());
  Result<ArimaModel> ok =
      ArimaModel::FromParameters(ArimaOrder{1, 0, 0}, {0.5}, {}, 0.1, 1.0);
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok.value().ar()[0], 0.5);
}

TEST(ArimaPredictorTest, WarmupEchoesThenPredicts) {
  Result<ArimaModel> model =
      ArimaModel::FromParameters(ArimaOrder{1, 0, 0}, {0.5}, {}, 0.0, 1.0);
  ASSERT_TRUE(model.ok());
  ArimaPredictor predictor(model.value());
  EXPECT_FALSE(predictor.Ready());
  EXPECT_DOUBLE_EQ(predictor.PredictNext(), 0.0);
  predictor.Observe(4.0);
  EXPECT_TRUE(predictor.Ready());
  // AR(1) with phi=0.5, c=0: forecast = 0.5 * 4 = 2.
  EXPECT_DOUBLE_EQ(predictor.PredictNext(), 2.0);
  const double resid = predictor.Observe(3.0);
  EXPECT_DOUBLE_EQ(resid, 1.0);
}

TEST(ArimaPredictorTest, ResetClearsHistory) {
  Result<ArimaModel> model =
      ArimaModel::FromParameters(ArimaOrder{1, 0, 0}, {0.5}, {}, 0.0, 1.0);
  ASSERT_TRUE(model.ok());
  ArimaPredictor predictor(model.value());
  predictor.Observe(4.0);
  predictor.Reset();
  EXPECT_FALSE(predictor.Ready());
}

TEST(ArimaPredictorTest, D1ForecastTracksRandomWalk) {
  // ARIMA(0,1,0) with intercept mu predicts y_t + mu.
  Result<ArimaModel> model =
      ArimaModel::FromParameters(ArimaOrder{0, 1, 0}, {}, {}, 0.5, 1.0);
  ASSERT_TRUE(model.ok());
  ArimaPredictor predictor(model.value());
  predictor.Observe(10.0);
  EXPECT_TRUE(predictor.Ready());
  EXPECT_DOUBLE_EQ(predictor.PredictNext(), 10.5);
  predictor.Observe(11.0);
  EXPECT_DOUBLE_EQ(predictor.PredictNext(), 11.5);
}

TEST(FitArimaAutoTest, SelectsReasonableOrderForAr1) {
  std::vector<double> series = MakeAr1(0.7, 0.0, 1.0, 600, 36);
  Result<ArimaModel> model = FitArimaAuto(series);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().order().d, 0);
  EXPECT_GE(model.value().order().p + model.value().order().q, 1);
}

TEST(FitArimaAutoTest, ChoosesDifferencingForTrend) {
  Rng rng(37);
  std::vector<double> series;
  double x = 0.0;
  for (int i = 0; i < 400; ++i) {
    x += 1.0 + rng.Gaussian(0.0, 0.05);
    series.push_back(x);
  }
  Result<ArimaModel> model = FitArimaAuto(series);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(model.value().order().d, 1);
}

TEST(FitArimaAutoTest, RejectsTinySeries) {
  std::vector<double> tiny(10, 1.0);
  EXPECT_FALSE(FitArimaAuto(tiny).ok());
}

TEST(ArimaOrderTest, ToStringFormat) {
  EXPECT_EQ((ArimaOrder{2, 1, 3}.ToString()), "ARIMA(2,1,3)");
}

// ----------------------------------------------------------- diagnostics --

TEST(ChiSquareTest, KnownValues) {
  // P(chi2_1 >= 3.841) = 0.05; P(chi2_10 >= 18.307) = 0.05.
  EXPECT_NEAR(ChiSquareSurvival(3.841, 1), 0.05, 1e-3);
  EXPECT_NEAR(ChiSquareSurvival(18.307, 10), 0.05, 1e-3);
  // Degenerate edges.
  EXPECT_DOUBLE_EQ(ChiSquareSurvival(0.0, 5), 1.0);
  EXPECT_LT(ChiSquareSurvival(1000.0, 5), 1e-10);
}

TEST(LjungBoxTest, WhiteNoisePasses) {
  Rng rng(61);
  std::vector<double> white;
  for (int i = 0; i < 400; ++i) white.push_back(rng.Gaussian(0, 1));
  Result<LjungBoxResult> result = LjungBoxTest(white, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().WhiteAt(0.01));
  EXPECT_GT(result.value().p_value, 0.01);
}

TEST(LjungBoxTest, AutocorrelatedSeriesFails) {
  std::vector<double> series = MakeAr1(0.8, 0.0, 1.0, 400, 62);
  Result<LjungBoxResult> result = LjungBoxTest(series, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().WhiteAt(0.05));
  EXPECT_LT(result.value().p_value, 1e-6);
  EXPECT_GT(result.value().q, 100.0);
}

TEST(LjungBoxTest, FittedArimaResidualsAreWhite) {
  // After fitting an adequate AR(1), the residuals must pass the test the
  // raw series fails.
  std::vector<double> series = MakeAr1(0.8, 0.0, 1.0, 600, 63);
  Result<ArimaModel> model = ArimaModel::Fit(series, ArimaOrder{1, 0, 0});
  ASSERT_TRUE(model.ok());
  Result<std::vector<double>> preds = model.value().PredictInSample(series);
  ASSERT_TRUE(preds.ok());
  std::vector<double> residuals;
  for (size_t i = 5; i < series.size(); ++i) {
    residuals.push_back(series[i] - preds.value()[i]);
  }
  Result<LjungBoxResult> result =
      LjungBoxTest(residuals, 10, /*fitted_params=*/1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().WhiteAt(0.01));
}

TEST(LjungBoxTest, ValidatesInput) {
  std::vector<double> series(100, 1.0);
  EXPECT_FALSE(LjungBoxTest(series, 0).ok());
  EXPECT_FALSE(LjungBoxTest(series, 5, 5).ok());   // lags <= params
  EXPECT_FALSE(LjungBoxTest(series, 5, -1).ok());
  std::vector<double> tiny(5, 1.0);
  EXPECT_FALSE(LjungBoxTest(tiny, 10).ok());
}

}  // namespace
}  // namespace invarnetx::ts
