// Tests for the embedded observability HTTP server: raw-socket round trips
// against an ephemeral loopback port, the standard endpoint set installed by
// InstallObsEndpoints, protocol edges (404/405/400, HEAD), and concurrent
// scrapes racing a live fleet's ingest path (the TSan job runs this suite).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "obs/http.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "serve/fleet.h"
#include "serve/statusz.h"

namespace invarnetx {
namespace {

using obs::HttpRequest;
using obs::HttpResponse;
using obs::HttpServer;

// Sends one raw request over a fresh loopback connection and returns the
// full response (status line + headers + body). Empty string on failure.
std::string RawRequest(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return RawRequest(port, "GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n");
}

// The body after the blank line separating it from the headers.
std::string Body(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(HttpServerTest, EphemeralPortRoundTripAndIdempotentStop) {
  HttpServer server;  // default options: 127.0.0.1, port 0
  server.Handle("/ping", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "pong " + request.query;
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string response = Get(server.port(), "/ping?q=1");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Length:"), std::string::npos);
  EXPECT_EQ(Body(response), "pong q=1");

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(HttpServerTest, ProtocolEdges) {
  HttpServer server;
  server.Handle("/ok", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());

  // Unknown path: 404 listing the registered endpoints.
  const std::string missing = Get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_NE(missing.find("/ok"), std::string::npos);
  // Non-GET/HEAD: 405.
  const std::string post = RawRequest(
      server.port(),
      "POST /ok HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);
  // Garbage request line: 400.
  const std::string malformed = RawRequest(server.port(), "garbage\r\n\r\n");
  EXPECT_NE(malformed.find("400"), std::string::npos);
  // HEAD gets the headers (with the real length) but no body.
  const std::string head = RawRequest(
      server.port(), "HEAD /ok HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(head.rfind("HTTP/1.1 200 OK", 0), 0u) << head;
  EXPECT_TRUE(Body(head).empty());

  server.Stop();
}

TEST(HttpServerTest, ObsEndpointsServeAllFourPages) {
  HttpServer server;
  serve::InstallObsEndpoints(&server);
  ASSERT_TRUE(server.Start().ok());

  // /metrics is a valid OpenMetrics exposition with the right content type.
  const std::string metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("application/openmetrics-text"), std::string::npos);
  size_t samples = 0;
  const Status valid = obs::ValidateOpenMetrics(Body(metrics), &samples);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_GT(samples, 0u);

  // /healthz answers ok with uptime.
  const std::string healthz = Get(server.port(), "/healthz");
  EXPECT_EQ(healthz.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_NE(Body(healthz).find("ok"), std::string::npos);
  EXPECT_NE(Body(healthz).find("uptime_s"), std::string::npos);

  // /statusz carries the metrics table and the journal tail.
  obs::EventJournal::Shared().Record(obs::EventKind::kLifecycle,
                                     "statusz journal probe");
  const std::string statusz = Body(Get(server.port(), "/statusz"));
  EXPECT_NE(statusz.find("metrics"), std::string::npos);
  EXPECT_NE(statusz.find("statusz journal probe"), std::string::npos);

  // /tracez renders the slow-span table.
  const std::string tracez = Body(Get(server.port(), "/tracez"));
  EXPECT_NE(tracez.find("tracez"), std::string::npos);

  // Scrapes are themselves counted, per status code.
  const std::string again = Body(Get(server.port(), "/metrics"));
  EXPECT_NE(again.find("obs_http_requests_total{code=\"200\"}"),
            std::string::npos);

  server.Stop();
}

// Scrape threads hammer every endpoint while the ingestion thread streams a
// faulty run into a registered fleet, then the fleet dies while the server
// stays up - the exact races (registry, status board, status cache, fleet
// teardown vs. scrape) the locks are there to prevent. TSan runs this.
TEST(HttpServerTest, ConcurrentScrapesDuringFleetIngest) {
  core::InvarNetX pipeline;
  const auto context = core::OperationContext{
      workload::WorkloadType::kWordCount, "10.0.0.2"};
  auto normal = core::SimulateNormalRuns(workload::WorkloadType::kWordCount,
                                         6, 42);
  ASSERT_TRUE(normal.ok());
  ASSERT_TRUE(pipeline.TrainContext(context, normal.value(), 1).ok());
  auto faulty = core::SimulateFaultRun(workload::WorkloadType::kWordCount,
                                       faults::FaultType::kCpuHog, 888);
  ASSERT_TRUE(faulty.ok());

  HttpServer server;
  serve::InstallObsEndpoints(&server);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 2; ++i) {
    scrapers.emplace_back([&] {
      while (!done.load()) {
        for (const char* path :
             {"/metrics", "/statusz", "/healthz", "/tracez"}) {
          if (!Get(port, path).empty()) scrapes.fetch_add(1);
        }
      }
    });
  }

  {
    serve::MonitorFleet fleet(&pipeline);
    ASSERT_TRUE(fleet.StartJob(context).ok());
    const telemetry::NodeTrace& series = faulty.value().nodes[1];
    for (size_t t = 0; t < series.cpi.size(); ++t) {
      serve::TickSample sample;
      sample.context = context;
      sample.cpi = series.cpi[t];
      for (int m = 0; m < telemetry::kNumMetrics; ++m) {
        sample.metrics[static_cast<size_t>(m)] =
            series.metrics[static_cast<size_t>(m)][t];
      }
      ASSERT_TRUE(fleet.IngestTick({sample}).ok());
    }
    fleet.WaitForDiagnoses();
    // While the fleet is alive the board exposes it to /statusz scrapes.
    EXPECT_GE(serve::FleetStatusBoard::Shared().size(), 1u);
  }
  // Fleet destroyed with the server still serving: scrapes must keep
  // working against the now-empty board.
  const std::string after = Body(Get(port, "/statusz"));
  EXPECT_FALSE(after.empty());

  done.store(true);
  for (std::thread& scraper : scrapers) scraper.join();
  EXPECT_GT(scrapes.load(), 0);
  server.Stop();
}

// Regression: a request head that hits the 8 KiB cap without ever sending
// the "\r\n\r\n" terminator used to be parsed as if it were complete. It
// must be answered with 400 and a closed connection instead.
TEST(HttpServerTest, OversizeUnterminatedHeadGets400) {
  HttpServer server;
  server.Handle("/ok", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());

  // > 8 KiB of header bytes, never terminated.
  std::string request = "GET /ok HTTP/1.1\r\nHost: x\r\nX-Pad: ";
  request.append(9000, 'a');
  const std::string response = RawRequest(server.port(), request);
  EXPECT_EQ(response.rfind("HTTP/1.1 400", 0), 0u) << response;
  EXPECT_NE(Body(response).find("exceeds"), std::string::npos) << response;

  // The server is still healthy for well-formed requests afterwards.
  const std::string ok = Get(server.port(), "/ok");
  EXPECT_EQ(ok.rfind("HTTP/1.1 200 OK", 0), 0u) << ok;

  server.Stop();
}

// Regression: any accept() errno other than EINTR used to kill the
// acceptor thread permanently - after one transient ECONNABORTED or EMFILE
// the server would silently stop accepting forever. Injected transient
// failures must be survived.
TEST(HttpServerTest, AcceptorSurvivesTransientAcceptFailures) {
  std::atomic<int> failures{3};
  HttpServer::Options options;
  options.accept_override = [&failures](int listen_fd) {
    if (failures.fetch_sub(1) > 0) {
      errno = ECONNABORTED;  // transient: aborted handshake
      return -1;
    }
    return static_cast<int>(::accept(listen_fd, nullptr, nullptr));
  };
  HttpServer server(options);
  server.Handle("/ok", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());

  // Wait out the injected failures (10 ms backoff each), then the acceptor
  // must still be alive and serving.
  while (failures.load() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::string response = Get(server.port(), "/ok");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK", 0), 0u) << response;

  server.Stop();
}

// Regression: Handle() used to mutate the handler map with no lock while
// worker threads looked paths up, an unsynchronized data race. Registering
// handlers from several threads during live scrapes must be clean (the
// TSan job runs this suite).
TEST(HttpServerTest, ConcurrentHandlerRegistrationDuringScrapes) {
  HttpServer server;
  server.Handle("/seed", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load()) {
      Get(port, "/seed");
      Get(port, "/nope");  // 404 path walks the whole map for its listing
    }
  });
  std::vector<std::thread> registrars;
  for (int t = 0; t < 2; ++t) {
    registrars.emplace_back([&server, t] {
      for (int i = 0; i < 20; ++i) {
        const std::string path =
            "/dyn" + std::to_string(t) + "_" + std::to_string(i);
        server.Handle(path, [path](const HttpRequest&) {
          HttpResponse response;
          response.body = path;
          return response;
        });
      }
    });
  }
  for (std::thread& registrar : registrars) registrar.join();
  done.store(true);
  scraper.join();

  // Every late-registered handler is reachable.
  const std::string late = Get(port, "/dyn1_19");
  EXPECT_EQ(late.rfind("HTTP/1.1 200 OK", 0), 0u) << late;
  EXPECT_EQ(Body(late), "/dyn1_19");

  server.Stop();
}

}  // namespace
}  // namespace invarnetx
