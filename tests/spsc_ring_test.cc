#include "common/spsc_ring.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace invarnetx {
namespace {

TEST(SpscRingTest, FifoOrderSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(i));
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwoSlotsButEnforcesRequested) {
  // Capacity is the backpressure limit, not the slot count: a ring asked to
  // hold 5 entries rejects the 6th even though the slot array has 8.
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));
  EXPECT_EQ(ring.rejects(), 1u);
  EXPECT_EQ(ring.SizeApprox(), 5u);
}

TEST(SpscRingTest, FullRingRejectsAndCountsInsteadOfBlocking) {
  SpscRing<uint64_t> ring(2);
  EXPECT_TRUE(ring.TryPush(10));
  EXPECT_TRUE(ring.TryPush(20));
  EXPECT_FALSE(ring.TryPush(30));
  EXPECT_FALSE(ring.TryPush(40));
  EXPECT_EQ(ring.rejects(), 2u);
  // Popping one frees one slot; the reject tally is monotonic.
  uint64_t out = 0;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 10u);
  EXPECT_TRUE(ring.TryPush(30));
  EXPECT_FALSE(ring.TryPush(50));
  EXPECT_EQ(ring.rejects(), 3u);
}

TEST(SpscRingTest, WraparoundPreservesFifoAcrossManyCycles) {
  // Push/pop far past the slot count so head/tail wrap the mask repeatedly;
  // order and content must survive every wrap.
  SpscRing<int> ring(4);
  int next_push = 0;
  int next_pop = 0;
  int out = -1;
  for (int cycle = 0; cycle < 1000; ++cycle) {
    const int burst = cycle % 4 + 1;
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.TryPush(next_push));
      ++next_push;
    }
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.TryPop(&out));
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(ring.rejects(), 0u);
}

TEST(SpscRingTest, ResetReallocatesAndDropsRetainedEntries) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_FALSE(ring.TryPush(3));
  ring.Reset(16);
  EXPECT_EQ(ring.capacity(), 16u);
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(ring.rejects(), 0u);
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(16));
}

TEST(SpscRingTest, MinimumCapacityIsOne) {
  SpscRing<int> ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  EXPECT_TRUE(ring.TryPush(7));
  EXPECT_FALSE(ring.TryPush(8));
  int out = -1;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 7);
}

// Single-producer/single-consumer stress: one thread pushes a monotonic
// sequence (spinning on full), the other pops until it has everything. Run
// under TSan in CI, this is the publication-ordering proof for the
// release/acquire pair; the consumer additionally asserts strict FIFO.
TEST(SpscRingTest, SpscStressPreservesOrderAcrossThreads) {
  constexpr uint64_t kItems = 200000;
  SpscRing<uint64_t> ring(64);
  std::atomic<bool> failed{false};

  std::thread consumer([&] {
    uint64_t expected = 0;
    uint64_t out = 0;
    while (expected < kItems) {
      if (ring.TryPop(&out)) {
        if (out != expected) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (uint64_t i = 0; i < kItems; ++i) {
    while (!ring.TryPush(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_FALSE(failed.load());
  EXPECT_TRUE(ring.Empty());
}

// The struct payload the serve layer actually ships: trivially copyable,
// published field-complete across the threads.
TEST(SpscRingTest, StructPayloadArrivesIntact) {
  struct Entry {
    uint32_t local;
    uint32_t index;
  };
  constexpr uint32_t kItems = 50000;
  SpscRing<Entry> ring(32);
  std::atomic<uint32_t> bad{0};

  std::thread consumer([&] {
    uint32_t seen = 0;
    Entry e{0, 0};
    while (seen < kItems) {
      if (ring.TryPop(&e)) {
        if (e.local != e.index * 2) bad.fetch_add(1);
        ++seen;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (uint32_t i = 0; i < kItems; ++i) {
    while (!ring.TryPush(Entry{i * 2, i})) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(bad.load(), 0u);
}

}  // namespace
}  // namespace invarnetx
