#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "fingerprint/fingerprint.h"

namespace invarnetx::fingerprint {
namespace {

using workload::WorkloadType;

class FingerprintTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    normal_ = new std::vector<telemetry::RunTrace>(
        core::SimulateNormalRuns(WorkloadType::kWordCount, 8, 42).value());
    index_ = new FingerprintIndex();
    ASSERT_TRUE(index_->Train(*normal_, 1).ok());
    for (uint64_t rep = 0; rep < 2; ++rep) {
      auto hog = core::SimulateFaultRun(WorkloadType::kWordCount,
                                        faults::FaultType::kMemHog,
                                        500 + rep);
      ASSERT_TRUE(index_->AddLabeled("mem-hog", hog.value(), 1).ok());
      auto cpu = core::SimulateFaultRun(WorkloadType::kWordCount,
                                        faults::FaultType::kCpuHog,
                                        510 + rep);
      ASSERT_TRUE(index_->AddLabeled("cpu-hog", cpu.value(), 1).ok());
    }
  }
  static void TearDownTestSuite() {
    delete index_;
    delete normal_;
  }

  static std::vector<telemetry::RunTrace>* normal_;
  static FingerprintIndex* index_;
};

std::vector<telemetry::RunTrace>* FingerprintTest::normal_ = nullptr;
FingerprintIndex* FingerprintTest::index_ = nullptr;

TEST_F(FingerprintTest, TrainingValidates) {
  FingerprintIndex fresh;
  EXPECT_FALSE(fresh.trained());
  EXPECT_FALSE(fresh.Train({}, 1).ok());
  EXPECT_FALSE(fresh.Train(*normal_, 99).ok());
  EXPECT_FALSE(fresh.Summarize((*normal_)[0], 1).ok());  // before Train
}

TEST_F(FingerprintTest, FingerprintShapeAndRange) {
  Result<std::vector<double>> values = index_->Summarize((*normal_)[0], 1);
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(values.value().size(),
            static_cast<size_t>(2 * telemetry::kNumMetrics));
  for (double v : values.value()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_F(FingerprintTest, HealthyRunsAreQuietFaultyRunsAreNot) {
  auto clean = core::SimulateNormalRuns(WorkloadType::kWordCount, 1, 777);
  EXPECT_FALSE(index_->IsAnomalous(clean.value()[0], 1).value());
  auto faulty = core::SimulateFaultRun(WorkloadType::kWordCount,
                                       faults::FaultType::kMemHog, 888);
  EXPECT_TRUE(index_->IsAnomalous(faulty.value(), 1).value());
}

TEST_F(FingerprintTest, ClassifiesNearestCrisis) {
  int correct = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto run = core::SimulateFaultRun(WorkloadType::kWordCount,
                                      faults::FaultType::kMemHog,
                                      900 + seed * 3);
    const auto matches = index_->Classify(run.value(), 1).value();
    if (!matches.empty() && matches[0].problem == "mem-hog") ++correct;
  }
  EXPECT_GE(correct, 4);
}

TEST_F(FingerprintTest, MatchesSortedByDistance) {
  auto run = core::SimulateFaultRun(WorkloadType::kWordCount,
                                    faults::FaultType::kCpuHog, 950);
  const auto matches = index_->Classify(run.value(), 1).value();
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i].distance, matches[i - 1].distance);
  }
}

TEST_F(FingerprintTest, ClassifyRequiresLabels) {
  FingerprintIndex fresh;
  ASSERT_TRUE(fresh.Train(*normal_, 1).ok());
  auto run = core::SimulateFaultRun(WorkloadType::kWordCount,
                                    faults::FaultType::kCpuHog, 960);
  EXPECT_FALSE(fresh.Classify(run.value(), 1).ok());
  EXPECT_EQ(fresh.num_labeled(), 0u);
}

}  // namespace
}  // namespace invarnetx::fingerprint
